package analysis

import (
	"testing"

	"memfp/internal/dram"
	"memfp/internal/trace"
	"memfp/internal/xrand"
)

// randomCEs draws a clustered CE batch: addresses are confined to small
// rank/device/bank/row/column ranges so the threshold rules actually
// trigger (uniform draws over real geometry would almost never repeat a
// cell).
func randomCEs(rng *xrand.RNG, n int) []trace.Event {
	events := make([]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, trace.Event{
			Time: trace.Minutes(i),
			Type: trace.TypeCE,
			Addr: dram.Addr{
				Rank:   rng.Intn(2),
				Device: rng.Intn(4),
				Bank:   rng.Intn(3),
				Row:    rng.Intn(6),
				Column: rng.Intn(6),
			},
		})
	}
	return events
}

// TestIncrementalMatchesClassify property-tests the O(1)-per-event
// incremental classifier against the batch Classify oracle at every
// prefix length, under both the default and randomized thresholds.
func TestIncrementalMatchesClassify(t *testing.T) {
	rng := xrand.New(21)
	for trial := 0; trial < 30; trial++ {
		th := DefaultThresholds()
		if trial%2 == 1 {
			th = Thresholds{
				CellCEs:         1 + rng.Intn(4),
				RowDistinctCols: 1 + rng.Intn(4),
				ColDistinctRows: 1 + rng.Intn(4),
				BankFaultyRows:  1 + rng.Intn(3),
				BankFaultyCols:  1 + rng.Intn(3),
				DeviceMinCEs:    1 + rng.Intn(4),
			}
		}
		events := randomCEs(rng, 1+rng.Intn(300))
		inc := NewIncremental(th)
		for i, e := range events {
			inc.Add(e)
			// Check every short prefix and a sample of long ones: the
			// batch oracle is quadratic over the whole test otherwise.
			if i > 40 && i%17 != 0 && i != len(events)-1 {
				continue
			}
			want := Classify(events[:i+1], th)
			if got := inc.Class(); got != want {
				t.Fatalf("trial %d prefix %d: incremental %+v != batch %+v (th=%+v)",
					trial, i+1, got, want, th)
			}
		}

		// Distinct-structure counts against direct set construction.
		banks := map[[3]int]struct{}{}
		rows := map[[4]int]struct{}{}
		cols := map[[4]int]struct{}{}
		cells := map[[5]int]int{}
		maxCell := 0
		for _, e := range events {
			a := e.Addr
			banks[[3]int{a.Rank, a.Device, a.Bank}] = struct{}{}
			rows[[4]int{a.Rank, a.Device, a.Bank, a.Row}] = struct{}{}
			cols[[4]int{a.Rank, a.Device, a.Bank, a.Column}] = struct{}{}
			k := [5]int{a.Rank, a.Device, a.Bank, a.Row, a.Column}
			cells[k]++
			if cells[k] > maxCell {
				maxCell = cells[k]
			}
		}
		if inc.DistinctBanks() != len(banks) || inc.DistinctRows() != len(rows) ||
			inc.DistinctCols() != len(cols) || inc.MaxCellCEs() != maxCell {
			t.Fatalf("trial %d: distinct counts (%d,%d,%d,max %d) != (%d,%d,%d,max %d)",
				trial, inc.DistinctBanks(), inc.DistinctRows(), inc.DistinctCols(), inc.MaxCellCEs(),
				len(banks), len(rows), len(cols), maxCell)
		}
		if inc.Events() != len(events) {
			t.Fatalf("trial %d: Events() = %d, want %d", trial, inc.Events(), len(events))
		}
	}
}

// TestIncrementalEmpty checks the zero-event classification.
func TestIncrementalEmpty(t *testing.T) {
	inc := NewIncremental(DefaultThresholds())
	if got, want := inc.Class(), Classify(nil, DefaultThresholds()); got != want {
		t.Fatalf("empty incremental %+v != batch %+v", got, want)
	}
}
