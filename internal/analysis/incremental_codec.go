package analysis

import (
	"sort"

	"memfp/internal/trace"
)

// Binary serialization of the incremental classifier, used when serving
// state crosses a process boundary (node checkpoints) or spills to disk.
// Map keys are written in sorted order so the encoding is deterministic
// for equal state. Thresholds ride along: the restored accumulator must
// keep classifying under the rules it accumulated under.

func appendBankKey(w *trace.BinWriter, k bankKey) {
	w.Varint(int64(k.rank))
	w.Varint(int64(k.dev))
	w.Varint(int64(k.bank))
}

func readBankKey(r *trace.BinReader) bankKey {
	return bankKey{rank: int(r.Varint()), dev: int(r.Varint()), bank: int(r.Varint())}
}

func (k bankKey) less(o bankKey) bool {
	if k.rank != o.rank {
		return k.rank < o.rank
	}
	if k.dev != o.dev {
		return k.dev < o.dev
	}
	return k.bank < o.bank
}

// sortedBankKeys returns the keys of a bank-keyed map in sorted order.
func sortedBankKeys[V any](m map[bankKey]V) []bankKey {
	keys := make([]bankKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// appendIntSet writes a set of ints as a sorted uvarint-count + varints.
func appendIntSet(w *trace.BinWriter, set map[int]struct{}) {
	vals := make([]int, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	w.Uvarint(uint64(len(vals)))
	for _, v := range vals {
		w.Varint(int64(v))
	}
}

func readIntSet(r *trace.BinReader) map[int]struct{} {
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(r.Remaining())+1 {
		r.Failf("analysis: int set of %d entries exceeds input", n)
		return nil
	}
	set := make(map[int]struct{}, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		set[int(r.Varint())] = struct{}{}
	}
	return set
}

// AppendBinary serializes the accumulator onto w.
func (x *Incremental) AppendBinary(w *trace.BinWriter) {
	w.Varint(int64(x.th.CellCEs))
	w.Varint(int64(x.th.RowDistinctCols))
	w.Varint(int64(x.th.ColDistinctRows))
	w.Varint(int64(x.th.BankFaultyRows))
	w.Varint(int64(x.th.BankFaultyCols))
	w.Varint(int64(x.th.DeviceMinCEs))

	w.Uvarint(uint64(len(x.cellCEs)))
	cells := make([]cellKey, 0, len(x.cellCEs))
	for k := range x.cellCEs {
		cells = append(cells, k)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.bankKey != b.bankKey {
			return a.bankKey.less(b.bankKey)
		}
		if a.row != b.row {
			return a.row < b.row
		}
		return a.col < b.col
	})
	for _, k := range cells {
		appendBankKey(w, k.bankKey)
		w.Varint(int64(k.row))
		w.Varint(int64(k.col))
		w.Varint(int64(x.cellCEs[k]))
	}

	w.Uvarint(uint64(len(x.rowCols)))
	rows := make([]rowKey, 0, len(x.rowCols))
	for k := range x.rowCols {
		rows = append(rows, k)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.bankKey != b.bankKey {
			return a.bankKey.less(b.bankKey)
		}
		return a.row < b.row
	})
	for _, k := range rows {
		appendBankKey(w, k.bankKey)
		w.Varint(int64(k.row))
		appendIntSet(w, x.rowCols[k])
	}

	w.Uvarint(uint64(len(x.colRows)))
	cols := make([]colKey, 0, len(x.colRows))
	for k := range x.colRows {
		cols = append(cols, k)
	}
	sort.Slice(cols, func(i, j int) bool {
		a, b := cols[i], cols[j]
		if a.bankKey != b.bankKey {
			return a.bankKey.less(b.bankKey)
		}
		return a.col < b.col
	})
	for _, k := range cols {
		appendBankKey(w, k.bankKey)
		w.Varint(int64(k.col))
		appendIntSet(w, x.colRows[k])
	}

	w.Uvarint(uint64(len(x.devCEs)))
	devs := make([]int, 0, len(x.devCEs))
	for d := range x.devCEs {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	for _, d := range devs {
		w.Varint(int64(d))
		w.Varint(int64(x.devCEs[d]))
	}

	w.Uvarint(uint64(len(x.banksSeen)))
	for _, k := range sortedBankKeys(x.banksSeen) {
		appendBankKey(w, k)
	}
	w.Uvarint(uint64(len(x.bankFaultyRows)))
	for _, k := range sortedBankKeys(x.bankFaultyRows) {
		appendBankKey(w, k)
		w.Varint(int64(x.bankFaultyRows[k]))
	}
	w.Uvarint(uint64(len(x.bankFaultyCols)))
	for _, k := range sortedBankKeys(x.bankFaultyCols) {
		appendBankKey(w, k)
		w.Varint(int64(x.bankFaultyCols[k]))
	}
	w.Uvarint(uint64(len(x.faultyBanks)))
	for _, k := range sortedBankKeys(x.faultyBanks) {
		appendBankKey(w, k)
	}

	w.Varint(int64(x.faultyCells))
	w.Varint(int64(x.faultyRows))
	w.Varint(int64(x.faultyCols))
	w.Varint(int64(x.faultyDevices))
	w.Varint(int64(x.maxCellCEs))
	w.Varint(int64(x.events))
	w.Varint(int64(x.rowColEntries))
	w.Varint(int64(x.colRowEntries))
}

// DecodeIncremental reads an accumulator serialized by AppendBinary.
// Errors latch on r; the caller checks r.Err().
func DecodeIncremental(r *trace.BinReader) *Incremental {
	th := Thresholds{
		CellCEs:         int(r.Varint()),
		RowDistinctCols: int(r.Varint()),
		ColDistinctRows: int(r.Varint()),
		BankFaultyRows:  int(r.Varint()),
		BankFaultyCols:  int(r.Varint()),
		DeviceMinCEs:    int(r.Varint()),
	}
	x := NewIncremental(th)

	count := func(what string) uint64 {
		n := r.Uvarint()
		if r.Err() == nil && n > uint64(r.Remaining())+1 {
			r.Failf("analysis: %s count %d exceeds input", what, n)
			return 0
		}
		return n
	}

	for i, n := uint64(0), count("cell"); i < n && r.Err() == nil; i++ {
		k := cellKey{bankKey: readBankKey(r)}
		k.row = int(r.Varint())
		k.col = int(r.Varint())
		x.cellCEs[k] = int(r.Varint())
	}
	for i, n := uint64(0), count("row"); i < n && r.Err() == nil; i++ {
		k := rowKey{bankKey: readBankKey(r)}
		k.row = int(r.Varint())
		x.rowCols[k] = readIntSet(r)
	}
	for i, n := uint64(0), count("col"); i < n && r.Err() == nil; i++ {
		k := colKey{bankKey: readBankKey(r)}
		k.col = int(r.Varint())
		x.colRows[k] = readIntSet(r)
	}
	for i, n := uint64(0), count("device"); i < n && r.Err() == nil; i++ {
		d := int(r.Varint())
		x.devCEs[d] = int(r.Varint())
	}
	for i, n := uint64(0), count("bank"); i < n && r.Err() == nil; i++ {
		x.banksSeen[readBankKey(r)] = struct{}{}
	}
	for i, n := uint64(0), count("faulty-row"); i < n && r.Err() == nil; i++ {
		k := readBankKey(r)
		x.bankFaultyRows[k] = int(r.Varint())
	}
	for i, n := uint64(0), count("faulty-col"); i < n && r.Err() == nil; i++ {
		k := readBankKey(r)
		x.bankFaultyCols[k] = int(r.Varint())
	}
	for i, n := uint64(0), count("faulty-bank"); i < n && r.Err() == nil; i++ {
		x.faultyBanks[readBankKey(r)] = struct{}{}
	}

	x.faultyCells = int(r.Varint())
	x.faultyRows = int(r.Varint())
	x.faultyCols = int(r.Varint())
	x.faultyDevices = int(r.Varint())
	x.maxCellCEs = int(r.Varint())
	x.events = int(r.Varint())
	x.rowColEntries = int(r.Varint())
	x.colRowEntries = int(r.Varint())
	return x
}
