package analysis

import (
	"strings"
	"testing"

	"memfp/internal/dram"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

func mkStore(t *testing.T) (*trace.Store, platform.DIMMPart) {
	t.Helper()
	part, err := platform.PartByNumber("A4-2666-32")
	if err != nil {
		t.Fatal(err)
	}
	return trace.NewStore(), part
}

func addDIMM(t *testing.T, s *trace.Store, part platform.DIMMPart, server int, events ...trace.Event) trace.DIMMID {
	t.Helper()
	id := trace.DIMMID{Platform: platform.Purley, Server: server, Slot: 0}
	if _, err := s.Register(id, part); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		e.DIMM = id
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Get(id).SortEvents()
	return id
}

func ceAt(tm trace.Minutes, row, col int) trace.Event {
	bits := dram.NewErrorBits(dram.X4)
	bits.Set(0, 0)
	return trace.Event{Time: tm, Type: trace.TypeCE,
		Addr: dram.Addr{Rank: 0, Device: 1, Bank: 1, Row: row, Column: col}, Bits: bits}
}

func ueAt(tm trace.Minutes) trace.Event {
	return trace.Event{Time: tm, Type: trace.TypeUE,
		Addr: dram.Addr{Rank: 0, Device: 1, Bank: 1, Row: 1, Column: 1}}
}

func TestTableIClassification(t *testing.T) {
	s, part := mkStore(t)
	// DIMM 0: CEs only.
	addDIMM(t, s, part, 0, ceAt(10, 1, 1), ceAt(20, 1, 2))
	// DIMM 1: predictable UE (CE before UE).
	addDIMM(t, s, part, 1, ceAt(10, 2, 1), ueAt(100))
	// DIMM 2: sudden UE (no CEs).
	addDIMM(t, s, part, 2, ueAt(50))
	// DIMM 3: UE before first CE → counted sudden.
	addDIMM(t, s, part, 3, ueAt(5), ceAt(10, 3, 1))

	st := TableI(s)
	if st.DIMMsWithCEs != 3 {
		t.Errorf("CE DIMMs %d, want 3", st.DIMMsWithCEs)
	}
	if st.DIMMsWithUEs != 3 {
		t.Errorf("UE DIMMs %d, want 3", st.DIMMsWithUEs)
	}
	if st.PredictableUEs != 1 || st.SuddenUEs != 2 {
		t.Errorf("predictable=%d sudden=%d, want 1/2", st.PredictableUEs, st.SuddenUEs)
	}
	if st.TotalPopulation != 4 {
		t.Errorf("population %d", st.TotalPopulation)
	}
}

func TestFigure4UsesPreUEEvidence(t *testing.T) {
	s, part := mkStore(t)
	// A row fault visible only BEFORE the UE plus post-UE noise that
	// would classify differently (post-UE CEs must be ignored).
	events := []trace.Event{}
	for col := 0; col < 6; col++ {
		events = append(events, ceAt(trace.Minutes(10+col), 42, col*7))
	}
	events = append(events, ueAt(100))
	addDIMM(t, s, part, 0, events...)
	// Benign cell-fault DIMM.
	addDIMM(t, s, part, 1, ceAt(10, 9, 9), ceAt(20, 9, 9), ceAt(30, 9, 9))

	cats := Figure4(s, DefaultThresholds())
	byCat := map[FaultCategory]CategoryStats{}
	for _, c := range cats {
		byCat[c.Category] = c
	}
	if byCat[CatRow].UEDIMMs != 1 {
		t.Errorf("row category UE DIMMs = %d, want 1", byCat[CatRow].UEDIMMs)
	}
	if byCat[CatRow].RelativeUEPct != 100 {
		t.Errorf("row attribution %.1f%%, want 100%%", byCat[CatRow].RelativeUEPct)
	}
	if byCat[CatCell].UEDIMMs != 0 {
		t.Errorf("cell category should have no UE DIMMs")
	}
	if byCat[CatSingleDevice].DIMMs != 2 {
		t.Errorf("single-device DIMMs = %d, want 2", byCat[CatSingleDevice].DIMMs)
	}
}

func TestFigure5BucketsByDominantSignature(t *testing.T) {
	s, part := mkStore(t)
	// DIMM with a consistent 2-DQ/beat-interval-4 signature, then a UE.
	events := []trace.Event{}
	for i := 0; i < 5; i++ {
		bits := dram.NewErrorBits(dram.X4)
		bits.Set(0, 1)
		bits.Set(2, 5)
		events = append(events, trace.Event{Time: trace.Minutes(10 + i), Type: trace.TypeCE,
			Addr: dram.Addr{Rank: 0, Device: 1, Bank: 1, Row: 1, Column: i}, Bits: bits})
	}
	events = append(events, ueAt(100))
	addDIMM(t, s, part, 0, events...)
	// Benign single-bit DIMM.
	addDIMM(t, s, part, 1, ceAt(10, 1, 1), ceAt(20, 1, 2))

	panels := Figure5(s)
	dq := panels[StatDQCount]
	var dq2 *BitBucket
	for i := range dq {
		if dq[i].Value == 2 {
			dq2 = &dq[i]
		}
	}
	if dq2 == nil || dq2.DIMMs != 1 || dq2.UEDIMMs != 1 {
		t.Fatalf("DQ=2 bucket wrong: %+v", dq2)
	}
	var bi4 *BitBucket
	for i := range panels[StatBeatInterval] {
		if panels[StatBeatInterval][i].Value == 4 {
			bi4 = &panels[StatBeatInterval][i]
		}
	}
	if bi4 == nil || bi4.RelativeUERate != 1 {
		t.Fatalf("beat-interval=4 bucket wrong: %+v", bi4)
	}
}

func TestFigure5SkipsX8(t *testing.T) {
	s := trace.NewStore()
	part, err := platform.PartByNumber("A8-2666-16") // x8 part
	if err != nil {
		t.Fatal(err)
	}
	id := trace.DIMMID{Platform: platform.Purley, Server: 0, Slot: 0}
	if _, err := s.Register(id, part); err != nil {
		t.Fatal(err)
	}
	bits := dram.NewErrorBits(dram.X8)
	bits.Set(0, 0)
	if err := s.Append(trace.Event{Time: 1, Type: trace.TypeCE, DIMM: id,
		Addr: dram.Addr{Device: 1, Bank: 1, Row: 1, Column: 1}, Bits: bits}); err != nil {
		t.Fatal(err)
	}
	panels := Figure5(s)
	for _, buckets := range panels {
		for _, b := range buckets {
			if b.DIMMs != 0 {
				t.Fatal("x8 DIMMs must be excluded from Figure 5")
			}
		}
	}
}

func TestFormatters(t *testing.T) {
	s, part := mkStore(t)
	addDIMM(t, s, part, 0, ceAt(10, 1, 1), ueAt(100))
	st := TableI(s)
	if out := FormatTableI([]DatasetStats{st}); !strings.Contains(out, "Intel_Purley") {
		t.Error("FormatTableI missing platform name")
	}
	if out := FormatFigure4("X", Figure4(s, DefaultThresholds())); !strings.Contains(out, "Single device") {
		t.Error("FormatFigure4 missing category")
	}
	if out := FormatFigure5("X", Figure5(s)); !strings.Contains(out, "DQ count") {
		t.Error("FormatFigure5 missing panel")
	}
}
