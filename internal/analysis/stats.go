package analysis

import (
	"fmt"
	"sort"
	"strings"

	"memfp/internal/dram"
	"memfp/internal/trace"
)

// DatasetStats reproduces one row of Table I for a platform fleet.
type DatasetStats struct {
	Platform        string
	DIMMsWithCEs    int
	DIMMsWithUEs    int
	PredictableUEs  int // UEs preceded by at least one CE
	SuddenUEs       int // UEs with no preceding CE
	PredictablePct  float64
	SuddenPct       float64
	TotalUERatePct  float64 // UE DIMMs / (CE DIMMs + sudden-only DIMMs)
	TotalCEs        int
	StormEpisodes   int
	TotalPopulation int // all DIMMs seen in the logs
}

// TableI computes Table I statistics from a fleet's logs.
func TableI(s *trace.Store) DatasetStats {
	var st DatasetStats
	for _, l := range s.DIMMs() {
		st.TotalPopulation++
		if st.Platform == "" {
			st.Platform = string(l.ID.Platform)
		}
		ceTime, hasCE := l.FirstCE()
		ueTime, hasUE := l.FirstUE()
		if hasCE {
			st.DIMMsWithCEs++
		}
		if hasUE {
			st.DIMMsWithUEs++
			if hasCE && ceTime < ueTime {
				st.PredictableUEs++
			} else {
				st.SuddenUEs++
			}
		}
		for _, e := range l.Events {
			switch e.Type {
			case trace.TypeCE:
				st.TotalCEs++
			case trace.TypeStorm:
				st.StormEpisodes++
			}
		}
	}
	if st.DIMMsWithUEs > 0 {
		st.PredictablePct = 100 * float64(st.PredictableUEs) / float64(st.DIMMsWithUEs)
		st.SuddenPct = 100 * float64(st.SuddenUEs) / float64(st.DIMMsWithUEs)
	}
	if st.TotalPopulation > 0 {
		st.TotalUERatePct = 100 * float64(st.DIMMsWithUEs) / float64(st.TotalPopulation)
	}
	return st
}

// FaultCategory is one x-axis entry of Figure 4.
type FaultCategory string

// Figure 4 categories.
const (
	CatCell         FaultCategory = "Cell"
	CatColumn       FaultCategory = "Column"
	CatRow          FaultCategory = "Row"
	CatBank         FaultCategory = "Bank"
	CatSingleDevice FaultCategory = "Single device"
	CatMultiDevice  FaultCategory = "Multi-device"
)

// FaultCategories lists Figure 4's x-axis in order.
func FaultCategories() []FaultCategory {
	return []FaultCategory{CatCell, CatColumn, CatRow, CatBank, CatSingleDevice, CatMultiDevice}
}

// CategoryStats holds both Figure-4 readings for one category.
type CategoryStats struct {
	Category FaultCategory
	// DIMMs is the number of CE DIMMs classified into the category.
	DIMMs int
	// UEDIMMs is how many of those developed a UE.
	UEDIMMs int
	// RelativeUEPct is the share of all UE DIMMs falling in this
	// category — the "Relative % of UE" bar of Figure 4.
	RelativeUEPct float64
	// ConditionalUERatePct is P(UE | category) as a percentage, the
	// complementary reading reported alongside.
	ConditionalUERatePct float64
}

// Figure4 classifies every CE DIMM and computes per-category UE statistics.
// Component-level categories (cell..bank) and device-span categories
// (single/multi) are two projections of the same classification, exactly as
// the paper plots them side by side.
func Figure4(s *trace.Store, th Thresholds) []CategoryStats {
	counts := map[FaultCategory]*CategoryStats{}
	for _, c := range FaultCategories() {
		counts[c] = &CategoryStats{Category: c}
	}
	totalUE := 0
	for _, l := range s.DIMMs() {
		ces := l.CEs()
		if len(ces) == 0 {
			continue // sudden-UE DIMMs carry no fault evidence
		}
		ueTime, hasUE := l.FirstUE()
		// Classify on pre-UE evidence only, as a deployed analysis would.
		if hasUE {
			ces = l.CEsBetween(0, ueTime)
			if len(ces) == 0 {
				continue
			}
		}
		cl := Classify(ces, th)
		var cats []FaultCategory
		switch cl.Mode {
		case CompCell:
			cats = append(cats, CatCell)
		case CompColumn:
			cats = append(cats, CatColumn)
		case CompRow:
			cats = append(cats, CatRow)
		case CompBank:
			cats = append(cats, CatBank)
		}
		if cl.MultiDevice {
			cats = append(cats, CatMultiDevice)
		} else {
			cats = append(cats, CatSingleDevice)
		}
		for _, cat := range cats {
			counts[cat].DIMMs++
			if hasUE {
				counts[cat].UEDIMMs++
			}
		}
		if hasUE {
			totalUE++
		}
	}
	out := make([]CategoryStats, 0, len(counts))
	for _, cat := range FaultCategories() {
		cs := counts[cat]
		if totalUE > 0 {
			cs.RelativeUEPct = 100 * float64(cs.UEDIMMs) / float64(totalUE)
		}
		if cs.DIMMs > 0 {
			cs.ConditionalUERatePct = 100 * float64(cs.UEDIMMs) / float64(cs.DIMMs)
		}
		out = append(out, *cs)
	}
	return out
}

// BitStat is one Figure-5 panel.
type BitStat string

// The four bit-level statistics of Figure 5.
const (
	StatDQCount      BitStat = "DQ count"
	StatBeatCount    BitStat = "Beat count"
	StatDQInterval   BitStat = "DQ interval"
	StatBeatInterval BitStat = "Beat interval"
)

// BitStats lists the Figure 5 panels in order.
func BitStats() []BitStat {
	return []BitStat{StatDQCount, StatBeatCount, StatDQInterval, StatBeatInterval}
}

// BitBucket is one bar of a Figure-5 panel: DIMMs whose dominant CE
// signature takes the given statistic value, and their UE rate.
type BitBucket struct {
	Value   int
	DIMMs   int
	UEDIMMs int
	// RelativeUERate is P(UE | dominant signature statistic == Value).
	RelativeUERate float64
}

// Figure5 computes, per bit statistic, the relative UE rate across DIMMs
// bucketed by their dominant CE signature value — the paper's error-bit
// analysis for x4 DRAM on the Intel platforms.
func Figure5(s *trace.Store) map[BitStat][]BitBucket {
	type agg struct{ dimms, ue int }
	panels := map[BitStat]map[int]*agg{}
	for _, st := range BitStats() {
		panels[st] = map[int]*agg{}
	}
	for _, l := range s.DIMMs() {
		if l.Part.Width != dram.X4 {
			continue // the paper's Figure 5 covers x4 devices
		}
		ces := l.CEs()
		if len(ces) == 0 {
			continue
		}
		ueTime, hasUE := l.FirstUE()
		if hasUE {
			ces = l.CEsBetween(0, ueTime)
			if len(ces) == 0 {
				continue
			}
		}
		dq, beat, dqi, bi := dominantSignature(ces)
		for st, v := range map[BitStat]int{
			StatDQCount: dq, StatBeatCount: beat,
			StatDQInterval: dqi, StatBeatInterval: bi,
		} {
			b := panels[st][v]
			if b == nil {
				b = &agg{}
				panels[st][v] = b
			}
			b.dimms++
			if hasUE {
				b.ue++
			}
		}
	}
	out := map[BitStat][]BitBucket{}
	for st, m := range panels {
		vals := make([]int, 0, len(m))
		for v := range m {
			vals = append(vals, v)
		}
		sort.Ints(vals)
		for _, v := range vals {
			a := m[v]
			rate := 0.0
			if a.dimms > 0 {
				rate = float64(a.ue) / float64(a.dimms)
			}
			out[st] = append(out[st], BitBucket{Value: v, DIMMs: a.dimms, UEDIMMs: a.ue, RelativeUERate: rate})
		}
	}
	return out
}

// dominantSignature is trace.DominantSignature; the shared helper keeps
// Figure 5 bucketing and §VI feature extraction on one tie-break.
func dominantSignature(ces []trace.Event) (dq, beat, dqi, bi int) {
	return trace.DominantSignature(ces)
}

// FormatTableI renders Table I rows as an aligned text table.
func FormatTableI(rows []DatasetStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %10s %16s %12s %12s\n",
		"Platform", "CE DIMMs", "UE DIMMs", "Predictable %", "Sudden %", "UE rate %")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %10d %10d %16.1f %12.1f %12.2f\n",
			r.Platform, r.DIMMsWithCEs, r.DIMMsWithUEs, r.PredictablePct, r.SuddenPct, r.TotalUERatePct)
	}
	return sb.String()
}

// FormatFigure4 renders Figure 4 bars for one platform.
func FormatFigure4(platformName string, cats []CategoryStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 — %s (relative %% of UE DIMMs per fault category)\n", platformName)
	for _, c := range cats {
		fmt.Fprintf(&sb, "  %-14s %6.1f%%  (P(UE|cat)=%5.1f%%, n=%d)\n",
			c.Category, c.RelativeUEPct, c.ConditionalUERatePct, c.DIMMs)
	}
	return sb.String()
}

// FormatFigure5 renders the four Figure 5 panels for one platform.
func FormatFigure5(platformName string, panels map[BitStat][]BitBucket) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 — %s (relative UE rate by dominant CE signature)\n", platformName)
	for _, st := range BitStats() {
		fmt.Fprintf(&sb, "  %s:\n", st)
		for _, b := range panels[st] {
			fmt.Fprintf(&sb, "    %2d: %.3f  (n=%d)\n", b.Value, b.RelativeUERate, b.DIMMs)
		}
	}
	return sb.String()
}
