package analysis

import (
	"memfp/internal/trace"
)

// Sliding maintains the §V threshold classification over a sliding window
// of CE events: Add folds an event entering the window, Remove folds one
// leaving it. Unlike Incremental (insert-only, lifetime prefix), every
// rule here must also demote cleanly when counts fall back below their
// thresholds, so the distinct-structure sets carry multiplicities. For
// any window contents (as a multiset), Class() is identical to Classify
// over the same events, regardless of the add/remove order that produced
// it.
//
// The feature extractor's serving cursor keeps one Sliding per DIMM: the
// observation window's classification then costs O(events entering +
// events leaving) per instant instead of a full rebuild over the window.
type Sliding struct {
	th Thresholds

	cellCEs map[cellKey]int
	rowCols map[rowKey]map[int]int // col -> CE count inside the window
	colRows map[colKey]map[int]int // row -> CE count inside the window
	devCEs  map[int]int

	bankFaultyRows map[bankKey]int
	bankFaultyCols map[bankKey]int

	faultyCells, faultyRows, faultyCols, faultyBanks, faultyDevices int
	events                                                          int
	// rowColEntries/colRowEntries track nested-map membership so
	// MemEstimate stays O(1).
	rowColEntries, colRowEntries int
}

// NewSliding returns an empty sliding-window classifier.
func NewSliding(th Thresholds) *Sliding {
	return &Sliding{
		th:             th,
		cellCEs:        map[cellKey]int{},
		rowCols:        map[rowKey]map[int]int{},
		colRows:        map[colKey]map[int]int{},
		devCEs:         map[int]int{},
		bankFaultyRows: map[bankKey]int{},
		bankFaultyCols: map[bankKey]int{},
	}
}

// bankIsFaulty evaluates the §V bank rule for one bank.
func (x *Sliding) bankIsFaulty(bk bankKey) bool {
	return x.bankFaultyRows[bk] >= x.th.BankFaultyRows && x.bankFaultyCols[bk] >= x.th.BankFaultyCols
}

// reBank adjusts the faulty-bank tally around a mutation of bk's row or
// column counts: call with the rule's value before the mutation.
func (x *Sliding) reBank(bk bankKey, was bool) {
	if is := x.bankIsFaulty(bk); is != was {
		if is {
			x.faultyBanks++
		} else {
			x.faultyBanks--
		}
	}
}

// Add folds one CE event entering the window.
func (x *Sliding) Add(e trace.Event) {
	a := e.Addr
	bk := bankKey{a.Rank, a.Device, a.Bank}
	rk := rowKey{bk, a.Row}
	lk := colKey{bk, a.Column}
	ck := cellKey{bk, a.Row, a.Column}
	x.events++

	n := x.cellCEs[ck] + 1
	x.cellCEs[ck] = n
	if n == x.th.CellCEs {
		x.faultyCells++
	}

	rs := x.rowCols[rk]
	if rs == nil {
		rs = map[int]int{}
		x.rowCols[rk] = rs
	}
	if rs[a.Column]++; rs[a.Column] == 1 {
		x.rowColEntries++
		if len(rs) == x.th.RowDistinctCols {
			x.faultyRows++
			was := x.bankIsFaulty(bk)
			x.bankFaultyRows[bk]++
			x.reBank(bk, was)
		}
	}

	cs := x.colRows[lk]
	if cs == nil {
		cs = map[int]int{}
		x.colRows[lk] = cs
	}
	if cs[a.Row]++; cs[a.Row] == 1 {
		x.colRowEntries++
		if len(cs) == x.th.ColDistinctRows {
			x.faultyCols++
			was := x.bankIsFaulty(bk)
			x.bankFaultyCols[bk]++
			x.reBank(bk, was)
		}
	}

	d := x.devCEs[a.Device] + 1
	x.devCEs[a.Device] = d
	if d == x.th.DeviceMinCEs {
		x.faultyDevices++
	}
}

// Remove folds one CE event leaving the window. The event must currently
// be in the window (every Remove pairs with an earlier Add).
func (x *Sliding) Remove(e trace.Event) {
	a := e.Addr
	bk := bankKey{a.Rank, a.Device, a.Bank}
	rk := rowKey{bk, a.Row}
	lk := colKey{bk, a.Column}
	ck := cellKey{bk, a.Row, a.Column}
	x.events--

	n := x.cellCEs[ck] - 1
	if n == 0 {
		delete(x.cellCEs, ck)
	} else {
		x.cellCEs[ck] = n
	}
	if n == x.th.CellCEs-1 {
		x.faultyCells--
	}

	rs := x.rowCols[rk]
	if rs[a.Column]--; rs[a.Column] == 0 {
		delete(rs, a.Column)
		x.rowColEntries--
		if len(rs) == x.th.RowDistinctCols-1 {
			x.faultyRows--
			was := x.bankIsFaulty(bk)
			if x.bankFaultyRows[bk]--; x.bankFaultyRows[bk] == 0 {
				delete(x.bankFaultyRows, bk)
			}
			x.reBank(bk, was)
		}
		if len(rs) == 0 {
			delete(x.rowCols, rk)
		}
	}

	cs := x.colRows[lk]
	if cs[a.Row]--; cs[a.Row] == 0 {
		delete(cs, a.Row)
		x.colRowEntries--
		if len(cs) == x.th.ColDistinctRows-1 {
			x.faultyCols--
			was := x.bankIsFaulty(bk)
			if x.bankFaultyCols[bk]--; x.bankFaultyCols[bk] == 0 {
				delete(x.bankFaultyCols, bk)
			}
			x.reBank(bk, was)
		}
		if len(cs) == 0 {
			delete(x.colRows, lk)
		}
	}

	d := x.devCEs[a.Device] - 1
	if d == 0 {
		delete(x.devCEs, a.Device)
	} else {
		x.devCEs[a.Device] = d
	}
	if d == x.th.DeviceMinCEs-1 {
		x.faultyDevices--
	}
}

// Class returns the classification of the current window contents; it
// matches Classify over the same events.
func (x *Sliding) Class() Class {
	c := Class{
		FaultyCells:   x.faultyCells,
		FaultyRows:    x.faultyRows,
		FaultyCols:    x.faultyCols,
		FaultyBanks:   x.faultyBanks,
		FaultyDevices: x.faultyDevices,
	}
	c.MultiDevice = c.FaultyDevices >= 2
	switch {
	case c.FaultyBanks > 0:
		c.Mode = CompBank
	case c.FaultyRows > 0:
		c.Mode = CompRow
	case c.FaultyCols > 0:
		c.Mode = CompColumn
	case c.FaultyCells > 0:
		c.Mode = CompCell
	default:
		c.Mode = CompSporadic
	}
	return c
}

// Events returns the number of events currently in the window.
func (x *Sliding) Events() int { return x.events }

// MemEstimate returns a rough heap-footprint estimate in bytes, O(1).
func (x *Sliding) MemEstimate() int64 {
	const entry = 48 // rough bytes per map entry across the key shapes
	entries := len(x.cellCEs) + len(x.rowCols) + len(x.colRows) + len(x.devCEs) +
		len(x.bankFaultyRows) + len(x.bankFaultyCols) +
		x.rowColEntries + x.colRowEntries
	return 128 + int64(entries)*entry
}
