package analysis

import (
	"memfp/internal/trace"
)

// Incremental maintains the §V threshold classification over a growing CE
// set, one event at a time. Because every rule in Classify is a monotone
// threshold on insert-only counts (CEs per cell, distinct columns per row,
// distinct rows per column, CEs per device), the classification can be
// updated in O(1) amortized per event instead of re-scanning the full
// history — the core of the feature extractor's one-pass lifetime
// accumulators. For any sequence of Adds, Class() is identical to
// Classify over the same events (thresholds must be >= 1, as all sane
// configurations are).
//
// Beyond Classify's outputs, it tracks the distinct-structure counts and
// the per-cell CE maximum that the feature extractor needs over the same
// lifetime prefix.
type Incremental struct {
	th Thresholds

	cellCEs map[cellKey]int
	rowCols map[rowKey]map[int]struct{}
	colRows map[colKey]map[int]struct{}
	devCEs  map[int]int

	banksSeen      map[bankKey]struct{}
	bankFaultyRows map[bankKey]int
	bankFaultyCols map[bankKey]int
	faultyBanks    map[bankKey]struct{}

	faultyCells, faultyRows, faultyCols, faultyDevices int
	maxCellCEs                                         int
	events                                             int
	// rowColEntries/colRowEntries count the members of the nested
	// distinct-column/row sets, so MemEstimate stays O(1).
	rowColEntries, colRowEntries int
}

// NewIncremental returns an empty incremental classifier.
func NewIncremental(th Thresholds) *Incremental {
	return &Incremental{
		th:             th,
		cellCEs:        map[cellKey]int{},
		rowCols:        map[rowKey]map[int]struct{}{},
		colRows:        map[colKey]map[int]struct{}{},
		devCEs:         map[int]int{},
		banksSeen:      map[bankKey]struct{}{},
		bankFaultyRows: map[bankKey]int{},
		bankFaultyCols: map[bankKey]int{},
		faultyBanks:    map[bankKey]struct{}{},
	}
}

// Add folds one CE event into the classification.
func (x *Incremental) Add(e trace.Event) {
	a := e.Addr
	bk := bankKey{a.Rank, a.Device, a.Bank}
	rk := rowKey{bk, a.Row}
	lk := colKey{bk, a.Column}
	ck := cellKey{bk, a.Row, a.Column}
	x.events++
	x.banksSeen[bk] = struct{}{}

	n := x.cellCEs[ck] + 1
	x.cellCEs[ck] = n
	if n > x.maxCellCEs {
		x.maxCellCEs = n
	}
	if n == x.th.CellCEs {
		x.faultyCells++
	}

	rs := x.rowCols[rk]
	if rs == nil {
		rs = map[int]struct{}{}
		x.rowCols[rk] = rs
	}
	if _, ok := rs[a.Column]; !ok {
		rs[a.Column] = struct{}{}
		x.rowColEntries++
		if len(rs) == x.th.RowDistinctCols {
			x.faultyRows++
			x.bankFaultyRows[bk]++
			x.checkBank(bk)
		}
	}

	cs := x.colRows[lk]
	if cs == nil {
		cs = map[int]struct{}{}
		x.colRows[lk] = cs
	}
	if _, ok := cs[a.Row]; !ok {
		cs[a.Row] = struct{}{}
		x.colRowEntries++
		if len(cs) == x.th.ColDistinctRows {
			x.faultyCols++
			x.bankFaultyCols[bk]++
			x.checkBank(bk)
		}
	}

	d := x.devCEs[a.Device] + 1
	x.devCEs[a.Device] = d
	if d == x.th.DeviceMinCEs {
		x.faultyDevices++
	}
}

// checkBank promotes the bank to faulty once both the row and column
// thresholds hold inside it. Counts only grow, so a bank never demotes.
func (x *Incremental) checkBank(bk bankKey) {
	if _, done := x.faultyBanks[bk]; done {
		return
	}
	if x.bankFaultyRows[bk] >= x.th.BankFaultyRows && x.bankFaultyCols[bk] >= x.th.BankFaultyCols {
		x.faultyBanks[bk] = struct{}{}
	}
}

// Class returns the classification of everything added so far; it matches
// Classify over the same events.
func (x *Incremental) Class() Class {
	c := Class{
		FaultyCells:   x.faultyCells,
		FaultyRows:    x.faultyRows,
		FaultyCols:    x.faultyCols,
		FaultyBanks:   len(x.faultyBanks),
		FaultyDevices: x.faultyDevices,
	}
	c.MultiDevice = c.FaultyDevices >= 2
	switch {
	case c.FaultyBanks > 0:
		c.Mode = CompBank
	case c.FaultyRows > 0:
		c.Mode = CompRow
	case c.FaultyCols > 0:
		c.Mode = CompColumn
	case c.FaultyCells > 0:
		c.Mode = CompCell
	default:
		c.Mode = CompSporadic
	}
	return c
}

// DistinctBanks returns the number of distinct (rank, device, bank)
// triples seen so far.
func (x *Incremental) DistinctBanks() int { return len(x.banksSeen) }

// DistinctRows returns the number of distinct rows (within their banks)
// seen so far.
func (x *Incremental) DistinctRows() int { return len(x.rowCols) }

// DistinctCols returns the number of distinct columns (within their banks)
// seen so far.
func (x *Incremental) DistinctCols() int { return len(x.colRows) }

// MaxCellCEs returns the largest CE count accumulated by any single cell.
func (x *Incremental) MaxCellCEs() int { return x.maxCellCEs }

// Events returns the number of events added.
func (x *Incremental) Events() int { return x.events }
