package analysis

import (
	"math/rand"
	"testing"

	"memfp/internal/dram"
	"memfp/internal/trace"
)

// randCEs generates a CE stream concentrated on few structures so the
// thresholds actually trip (and un-trip as the window slides).
func randCEs(rng *rand.Rand, n int) []trace.Event {
	out := make([]trace.Event, n)
	for i := range out {
		out[i] = trace.Event{
			Time: trace.Minutes(i),
			Type: trace.TypeCE,
			Addr: dram.Addr{
				Rank:   rng.Intn(2),
				Device: rng.Intn(4),
				Bank:   rng.Intn(3),
				Row:    rng.Intn(5),
				Column: rng.Intn(5),
			},
		}
	}
	return out
}

// TestSlidingMatchesClassify slides windows of random sizes over random
// CE streams: after each slide, the incremental classification must equal
// the batch Classify over the window's contents.
func TestSlidingMatchesClassify(t *testing.T) {
	th := DefaultThresholds()
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		events := randCEs(rng, 400)
		s := NewSliding(th)
		lo, hi := 0, 0
		for step := 0; step < 120; step++ {
			// Advance the window by random amounts on both ends.
			nhi := min(hi+rng.Intn(8), len(events))
			nlo := min(lo+rng.Intn(6), nhi)
			for ; hi < nhi; hi++ {
				s.Add(events[hi])
			}
			for ; lo < nlo; lo++ {
				s.Remove(events[lo])
			}
			got, want := s.Class(), Classify(events[lo:hi], th)
			if got != want {
				t.Fatalf("trial %d step %d window [%d,%d): sliding %+v != batch %+v",
					trial, step, lo, hi, got, want)
			}
			if s.Events() != hi-lo {
				t.Fatalf("trial %d step %d: Events()=%d, want %d", trial, step, s.Events(), hi-lo)
			}
		}
		// Drain completely: the empty window must classify as empty and the
		// maps must not leak entries.
		for ; lo < hi; lo++ {
			s.Remove(events[lo])
		}
		if got := s.Class(); got != (Class{Mode: CompSporadic}) {
			t.Fatalf("trial %d: drained window classifies as %+v", trial, got)
		}
		if s.MemEstimate() != NewSliding(th).MemEstimate() {
			t.Fatalf("trial %d: drained window retains map entries (est %d)", trial, s.MemEstimate())
		}
	}
}
