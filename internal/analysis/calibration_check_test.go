package analysis_test

import (
	"testing"

	"memfp/internal/analysis"
	"memfp/internal/faultsim"
	"memfp/internal/platform"
)

// TestCalibrationShapes generates a mid-size fleet per platform and checks
// that the log-driven analysis reproduces the paper's qualitative shapes
// (Table I ratios, Figure 4 dominance patterns, Figure 5 risky buckets).
// This is the master guard for the simulator calibration.
func TestCalibrationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check is slow")
	}
	type shape struct {
		predLo, predHi float64 // predictable % bounds
		multiDominant  bool    // multi-device attribution > single-device
	}
	want := map[platform.ID]shape{
		platform.Purley:  {predLo: 62, predHi: 84, multiDominant: false},
		platform.Whitley: {predLo: 30, predHi: 54, multiDominant: true},
		platform.K920:    {predLo: 72, predHi: 92, multiDominant: true},
	}
	rates := map[platform.ID]float64{}
	for _, id := range platform.All() {
		res, err := faultsim.Generate(faultsim.Config{Platform: id, Scale: 0.2, Seed: 42})
		if err != nil {
			t.Fatalf("generate %s: %v", id, err)
		}
		st := analysis.TableI(res.Store)
		t.Logf("\n%s", analysis.FormatTableI([]analysis.DatasetStats{st}))
		w := want[id]
		if st.PredictablePct < w.predLo || st.PredictablePct > w.predHi {
			t.Errorf("%s predictable%% = %.1f, want in [%v, %v]", id, st.PredictablePct, w.predLo, w.predHi)
		}
		rates[id] = st.TotalUERatePct

		cats := analysis.Figure4(res.Store, analysis.DefaultThresholds())
		t.Logf("\n%s", analysis.FormatFigure4(string(id), cats))
		byCat := map[analysis.FaultCategory]analysis.CategoryStats{}
		for _, c := range cats {
			byCat[c.Category] = c
		}
		single := byCat[analysis.CatSingleDevice].RelativeUEPct
		multi := byCat[analysis.CatMultiDevice].RelativeUEPct
		if w.multiDominant && multi <= single {
			t.Errorf("%s: want multi-device dominant, got single=%.1f multi=%.1f", id, single, multi)
		}
		if !w.multiDominant && single <= multi {
			t.Errorf("%s: want single-device dominant, got single=%.1f multi=%.1f", id, single, multi)
		}
		// Row+bank should out-attribute cell+column everywhere (Finding 2).
		rowBank := byCat[analysis.CatRow].RelativeUEPct + byCat[analysis.CatBank].RelativeUEPct
		cellCol := byCat[analysis.CatCell].RelativeUEPct + byCat[analysis.CatColumn].RelativeUEPct
		if rowBank <= cellCol {
			t.Errorf("%s: want row+bank attribution > cell+column, got %.1f vs %.1f", id, rowBank, cellCol)
		}
	}
	if !(rates[platform.K920] < rates[platform.Whitley] && rates[platform.Whitley] < rates[platform.Purley]) {
		t.Errorf("UE rate ordering: want K920 < Whitley < Purley, got %v", rates)
	}

	// Figure 5 risky buckets on the Intel platforms.
	for _, tc := range []struct {
		id          platform.ID
		riskyDQ     int
		riskyBeat   int
		riskyBeatIv int // -1 when interval carries no signal
	}{
		{platform.Purley, 2, 2, 4},
		{platform.Whitley, 4, 5, -1},
	} {
		res, err := faultsim.Generate(faultsim.Config{Platform: tc.id, Scale: 0.2, Seed: 42})
		if err != nil {
			t.Fatalf("generate %s: %v", tc.id, err)
		}
		panels := analysis.Figure5(res.Store)
		t.Logf("\n%s", analysis.FormatFigure5(string(tc.id), panels))
		assertArgmax := func(stat analysis.BitStat, wantValue int) {
			t.Helper()
			best, bestRate := -1, -1.0
			for _, b := range panels[stat] {
				if b.DIMMs < 8 {
					continue // tiny buckets are noise
				}
				if b.RelativeUERate > bestRate {
					best, bestRate = b.Value, b.RelativeUERate
				}
			}
			if best != wantValue {
				t.Errorf("%s %s: argmax bucket = %d (rate %.3f), want %d", tc.id, stat, best, bestRate, wantValue)
			}
		}
		assertArgmax(analysis.StatDQCount, tc.riskyDQ)
		assertArgmax(analysis.StatBeatCount, tc.riskyBeat)
		if tc.riskyBeatIv >= 0 {
			assertArgmax(analysis.StatBeatInterval, tc.riskyBeatIv)
		}
	}
}
