package analysis

import (
	"bytes"
	"math/rand"
	"testing"

	"memfp/internal/dram"
	"memfp/internal/trace"
)

func randCE(rng *rand.Rand) trace.Event {
	return trace.Event{
		Type: trace.TypeCE,
		Addr: dram.Addr{
			Rank:   rng.Intn(2),
			Device: rng.Intn(6),
			Bank:   rng.Intn(4),
			Row:    rng.Intn(32),
			Column: rng.Intn(32),
		},
	}
}

// assertIncrementalEqual compares every externally observable facet of
// two accumulators.
func assertIncrementalEqual(t *testing.T, got, want *Incremental, when string) {
	t.Helper()
	if got.Class() != want.Class() {
		t.Fatalf("%s: Class %+v, want %+v", when, got.Class(), want.Class())
	}
	if got.DistinctBanks() != want.DistinctBanks() ||
		got.DistinctRows() != want.DistinctRows() ||
		got.DistinctCols() != want.DistinctCols() ||
		got.MaxCellCEs() != want.MaxCellCEs() ||
		got.Events() != want.Events() {
		t.Fatalf("%s: distinct counts diverge", when)
	}
}

// TestIncrementalCodecRoundTrip serializes a populated accumulator,
// restores it, and then keeps feeding both copies the same events: the
// restored maps must behave identically to the originals, not just
// report equal snapshots.
func TestIncrementalCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		x := NewIncremental(DefaultThresholds())
		for i := 0; i < rng.Intn(400); i++ {
			x.Add(randCE(rng))
		}
		var w trace.BinWriter
		x.AppendBinary(&w)
		r := trace.NewBinReader(w.Buf)
		y := DecodeIncremental(r)
		if err := r.Err(); err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("trial %d: %d trailing bytes", trial, r.Remaining())
		}
		assertIncrementalEqual(t, y, x, "after restore")

		// Determinism: equal state encodes to equal bytes.
		var w2 trace.BinWriter
		y.AppendBinary(&w2)
		if !bytes.Equal(w.Buf, w2.Buf) {
			t.Fatalf("trial %d: encoding not deterministic", trial)
		}

		for i := 0; i < 200; i++ {
			e := randCE(rng)
			x.Add(e)
			y.Add(e)
		}
		assertIncrementalEqual(t, y, x, "after continued adds")
	}
}

// TestIncrementalCodecTruncation latches errors instead of panicking on
// truncated input.
func TestIncrementalCodecTruncation(t *testing.T) {
	x := NewIncremental(DefaultThresholds())
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		x.Add(randCE(rng))
	}
	var w trace.BinWriter
	x.AppendBinary(&w)
	for cut := 0; cut < len(w.Buf); cut += 5 {
		r := trace.NewBinReader(w.Buf[:cut])
		DecodeIncremental(r)
		if r.Err() == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(w.Buf))
		}
	}
}
