package analysis

import (
	"testing"

	"memfp/internal/dram"
	"memfp/internal/trace"
)

func ce(dev, bank, row, col int) trace.Event {
	return trace.Event{
		Type: trace.TypeCE,
		Addr: dram.Addr{Rank: 0, Device: dev, Bank: bank, Row: row, Column: col},
	}
}

func TestClassifyEmpty(t *testing.T) {
	c := Classify(nil, DefaultThresholds())
	if c.Mode != CompSporadic || c.MultiDevice {
		t.Errorf("empty input: %+v", c)
	}
}

func TestClassifyCellFault(t *testing.T) {
	var ces []trace.Event
	for i := 0; i < 5; i++ {
		ces = append(ces, ce(0, 1, 100, 200))
	}
	c := Classify(ces, DefaultThresholds())
	if c.Mode != CompCell {
		t.Errorf("mode %v, want cell", c.Mode)
	}
	if c.FaultyCells != 1 || c.MultiDevice {
		t.Errorf("%+v", c)
	}
}

func TestClassifyRowFault(t *testing.T) {
	var ces []trace.Event
	for col := 0; col < 6; col++ {
		ces = append(ces, ce(2, 3, 500, col*10))
	}
	c := Classify(ces, DefaultThresholds())
	if c.Mode != CompRow {
		t.Errorf("mode %v, want row", c.Mode)
	}
	if c.FaultyRows != 1 {
		t.Errorf("faulty rows %d, want 1", c.FaultyRows)
	}
}

func TestClassifyColumnFault(t *testing.T) {
	var ces []trace.Event
	for row := 0; row < 6; row++ {
		ces = append(ces, ce(2, 3, row*7, 123))
	}
	c := Classify(ces, DefaultThresholds())
	if c.Mode != CompColumn {
		t.Errorf("mode %v, want column", c.Mode)
	}
}

func TestClassifyBankFault(t *testing.T) {
	var ces []trace.Event
	// Two faulty rows and two faulty columns in the same bank.
	for col := 0; col < 4; col++ {
		ces = append(ces, ce(1, 5, 10, col*3))
		ces = append(ces, ce(1, 5, 20, col*5+1))
	}
	for row := 0; row < 4; row++ {
		ces = append(ces, ce(1, 5, 100+row*9, 700))
		ces = append(ces, ce(1, 5, 200+row*11, 800))
	}
	c := Classify(ces, DefaultThresholds())
	if c.Mode != CompBank {
		t.Errorf("mode %v, want bank (%+v)", c.Mode, c)
	}
}

func TestClassifyRowNotBank(t *testing.T) {
	// One faulty row plus scattered noise must NOT classify as bank.
	var ces []trace.Event
	for col := 0; col < 30; col++ {
		ces = append(ces, ce(0, 2, 999, col))
	}
	for i := 0; i < 10; i++ {
		ces = append(ces, ce(0, 2, 1000+i*37, 500+i*13))
	}
	c := Classify(ces, DefaultThresholds())
	if c.Mode != CompRow {
		t.Errorf("mode %v, want row (bank overtriggered: %+v)", c.Mode, c)
	}
}

func TestClassifyMultiDevice(t *testing.T) {
	var ces []trace.Event
	for i := 0; i < 5; i++ {
		ces = append(ces, ce(0, 1, 10, i*5))
		ces = append(ces, ce(7, 2, 20, i*5))
	}
	c := Classify(ces, DefaultThresholds())
	if !c.MultiDevice || c.FaultyDevices != 2 {
		t.Errorf("multi-device not detected: %+v", c)
	}
}

func TestClassifySingleStrayNotMultiDevice(t *testing.T) {
	var ces []trace.Event
	for i := 0; i < 10; i++ {
		ces = append(ces, ce(0, 1, 10, i*3))
	}
	ces = append(ces, ce(9, 4, 77, 88)) // one stray CE on another device
	c := Classify(ces, DefaultThresholds())
	if c.MultiDevice {
		t.Errorf("one stray CE should not make multi-device: %+v", c)
	}
}

func TestClassifyPriorityOrder(t *testing.T) {
	// A bank fault plus separate cell fault: bank wins.
	var ces []trace.Event
	for col := 0; col < 4; col++ {
		ces = append(ces, ce(1, 5, 10, col*3))
		ces = append(ces, ce(1, 5, 20, col*5+1))
	}
	for row := 0; row < 4; row++ {
		ces = append(ces, ce(1, 5, 100+row*9, 700))
		ces = append(ces, ce(1, 5, 200+row*11, 800))
	}
	ces = append(ces, ce(3, 0, 1, 1), ce(3, 0, 1, 1), ce(3, 0, 1, 1))
	c := Classify(ces, DefaultThresholds())
	if c.Mode != CompBank {
		t.Errorf("priority: got %v, want bank", c.Mode)
	}
	if c.FaultyCells < 1 {
		t.Errorf("cell fault lost: %+v", c)
	}
}

func TestComponentModeStrings(t *testing.T) {
	for _, m := range ComponentModes() {
		if m.String() == "" || m.String() == "unknown" {
			t.Errorf("mode %d has bad string", int(m))
		}
	}
}
