package controlplane

import (
	"fmt"
	"sync"

	"memfp/internal/mlops"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

// Binary wire frames for the distributed hot path. Three frame types ride
// on the trace package's varint primitives (the same substrate as the
// event frame and the engine's frozen-DIMM blobs):
//
//	"MFA1" — alarm page: string table (platform IDs, model names),
//	         uvarint count, per alarm varint Δtime, uvarint platform
//	         index, varint server, varint slot, raw float64 score bits,
//	         uvarint model index. Scores travel as raw IEEE-754 bits, so
//	         no rendering can perturb the byte-identical alarm invariant.
//	"MFT1" — tick batch (control plane → node): uvarint prune-below
//	         journal index, uvarint tick count, per tick uvarint journal
//	         index, uvarint pinned model version, length-prefixed MFE1
//	         event frame.
//	"MFR1" — tick-batch response (node → control plane): uvarint tick
//	         count, per tick uvarint journal index, length-prefixed MFA1
//	         alarm frame.
//
// Content types negotiate the codec per request; the BMC text form and
// JSON remain the fallback and the equivalence oracle.
const (
	// ContentTypeEvents marks a request body holding one MFE1 binary
	// event frame (trace.AppendEventFrame) instead of BMC text lines.
	ContentTypeEvents = "application/x-memfp-events"
	// ContentTypeTicks marks an MFT1 tick-batch body on the node fan-out.
	ContentTypeTicks = "application/x-memfp-ticks"
	// ContentTypeAlarms marks an MFA1 alarm page (also accepted in an
	// Accept header to request binary alarms back).
	ContentTypeAlarms = "application/x-memfp-alarms"
	// ContentTypeSnapshot marks a serialized engine snapshot (MFS1).
	ContentTypeSnapshot = "application/x-memfp-snapshot"

	// HeaderPending carries TickResponse.Pending on binary ingest
	// responses, whose body is a bare alarm frame.
	HeaderPending = "X-Memfp-Pending"
	// HeaderNext carries the next alarm-stream cursor on binary alarm
	// pages.
	HeaderNext = "X-Memfp-Next"
)

const (
	alarmFrameMagic = "MFA1"
	tickFrameMagic  = "MFT1"
	respFrameMagic  = "MFR1"
)

// wireBufs recycles frame-encoding buffers across sender round-trips and
// handler responses.
var wireBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getWireBuf() *[]byte  { return wireBufs.Get().(*[]byte) }
func putWireBuf(b *[]byte) { *b = (*b)[:0]; wireBufs.Put(b) }

// internTable assigns frame-local string indices in first-appearance
// order, exactly like the event frame's table.
type internTable struct {
	idx  map[string]uint64
	list []string
}

func (t *internTable) ref(s string) uint64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	if t.idx == nil {
		t.idx = map[string]uint64{}
	}
	i := uint64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// AppendAlarmFrame encodes an alarm page into dst and returns the
// extended buffer.
func AppendAlarmFrame(dst []byte, alarms []mlops.Alarm) []byte {
	var tab internTable
	body := trace.BinWriter{Buf: make([]byte, 0, 4+16*len(alarms))}
	body.Uvarint(uint64(len(alarms)))
	var prev int64
	for _, a := range alarms {
		body.Varint(int64(a.Time) - prev)
		prev = int64(a.Time)
		body.Uvarint(tab.ref(string(a.DIMM.Platform)))
		body.Varint(int64(a.DIMM.Server))
		body.Varint(int64(a.DIMM.Slot))
		body.Float64(a.Score)
		body.Uvarint(tab.ref(a.Model))
	}
	w := trace.BinWriter{Buf: dst}
	w.Raw([]byte(alarmFrameMagic))
	w.Uvarint(uint64(len(tab.list)))
	for _, s := range tab.list {
		w.String(s)
	}
	w.Raw(body.Buf)
	return w.Buf
}

// readAlarmFrame decodes an alarm page in place on r (so MFR1 can embed
// pages); errors latch on the reader.
func readAlarmFrame(r *trace.BinReader) []mlops.Alarm {
	if magic := r.Raw(len(alarmFrameMagic)); string(magic) != alarmFrameMagic {
		r.Failf("controlplane: not an %s alarm frame", alarmFrameMagic)
		return nil
	}
	nStr := r.Uvarint()
	if nStr > uint64(r.Remaining()) {
		r.Failf("controlplane: alarm frame declares %d strings in %d bytes", nStr, r.Remaining())
		return nil
	}
	table := make([]string, 0, nStr)
	for i := uint64(0); i < nStr && r.Err() == nil; i++ {
		table = append(table, r.String())
	}
	ref := func() string {
		i := r.Uvarint()
		if r.Err() == nil && i >= uint64(len(table)) {
			r.Failf("controlplane: alarm frame string index %d out of range", i)
		}
		if r.Err() != nil {
			return ""
		}
		return table[i]
	}
	n := r.Uvarint()
	if n > uint64(r.Remaining())+1 {
		r.Failf("controlplane: alarm frame declares %d alarms in %d bytes", n, r.Remaining())
		return nil
	}
	alarms := make([]mlops.Alarm, 0, n)
	var prev int64
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		var a mlops.Alarm
		prev += r.Varint()
		a.Time = trace.Minutes(prev)
		a.DIMM.Platform = platform.ID(ref())
		a.DIMM.Server = int(r.Varint())
		a.DIMM.Slot = int(r.Varint())
		a.Score = r.Float64()
		a.Model = ref()
		alarms = append(alarms, a)
	}
	if r.Err() != nil {
		return nil
	}
	return alarms
}

// DecodeAlarmFrame decodes one standalone alarm page.
func DecodeAlarmFrame(data []byte) ([]mlops.Alarm, error) {
	r := trace.NewBinReader(data)
	alarms := readAlarmFrame(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	return alarms, nil
}

// wireTick is one journal entry on the tick-batch wire: the journal
// index, the pinned model version, and the node's event slice.
type wireTick struct {
	tick    int
	version int
	events  []trace.Event
}

// appendTickFrame encodes a tick batch into dst. partOf resolves event
// DIMMs to part numbers for the embedded event frames.
func appendTickFrame(dst []byte, pruneBelow int, ticks []wireTick, partOf func(trace.DIMMID) string) []byte {
	w := trace.BinWriter{Buf: dst}
	w.Raw([]byte(tickFrameMagic))
	w.Uvarint(uint64(pruneBelow))
	w.Uvarint(uint64(len(ticks)))
	inner := getWireBuf()
	for _, t := range ticks {
		w.Uvarint(uint64(t.tick))
		w.Uvarint(uint64(t.version))
		*inner = trace.AppendEventFrame((*inner)[:0], t.events, partOf)
		w.Bytes(*inner)
	}
	putWireBuf(inner)
	return w.Buf
}

// decodedTick is one tick on the node side of the batch wire.
type decodedTick struct {
	tick    int
	version int
	events  []trace.Event
	parts   []string
}

// decodeTickFrame decodes a tick batch. Ticks must be strictly
// ascending — the control plane delivers in journal order.
func decodeTickFrame(data []byte) (pruneBelow int, ticks []decodedTick, err error) {
	r := trace.NewBinReader(data)
	if magic := r.Raw(len(tickFrameMagic)); r.Err() != nil || string(magic) != tickFrameMagic {
		return 0, nil, fmt.Errorf("controlplane: not an %s tick frame", tickFrameMagic)
	}
	pruneBelow = int(r.Uvarint())
	n := r.Uvarint()
	if n > uint64(r.Remaining()) {
		return 0, nil, fmt.Errorf("controlplane: tick frame declares %d ticks in %d bytes", n, r.Remaining())
	}
	last := -1
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		var dt decodedTick
		dt.tick = int(r.Uvarint())
		dt.version = int(r.Uvarint())
		frame := r.Bytes()
		if r.Err() != nil {
			break
		}
		if dt.tick <= last {
			return 0, nil, fmt.Errorf("controlplane: tick frame indices not ascending (%d after %d)", dt.tick, last)
		}
		last = dt.tick
		dt.events, dt.parts, err = trace.DecodeEventFrame(frame)
		if err != nil {
			return 0, nil, err
		}
		ticks = append(ticks, dt)
	}
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	return pruneBelow, ticks, nil
}

// appendRespFrame encodes a tick-batch response: per served tick, its
// journal index and alarm page.
func appendRespFrame(dst []byte, ticks []int, alarms [][]mlops.Alarm) []byte {
	w := trace.BinWriter{Buf: dst}
	w.Raw([]byte(respFrameMagic))
	w.Uvarint(uint64(len(ticks)))
	inner := getWireBuf()
	for i, tk := range ticks {
		w.Uvarint(uint64(tk))
		*inner = AppendAlarmFrame((*inner)[:0], alarms[i])
		w.Bytes(*inner)
	}
	putWireBuf(inner)
	return w.Buf
}

// decodeRespFrame decodes a tick-batch response into a journal-index →
// alarms map.
func decodeRespFrame(data []byte) (map[int][]mlops.Alarm, error) {
	r := trace.NewBinReader(data)
	if magic := r.Raw(len(respFrameMagic)); r.Err() != nil || string(magic) != respFrameMagic {
		return nil, fmt.Errorf("controlplane: not an %s response frame", respFrameMagic)
	}
	n := r.Uvarint()
	if n > uint64(r.Remaining())+1 {
		return nil, fmt.Errorf("controlplane: response frame declares %d ticks in %d bytes", n, r.Remaining())
	}
	out := make(map[int][]mlops.Alarm, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		tick := int(r.Uvarint())
		page := r.Bytes()
		if r.Err() != nil {
			break
		}
		alarms, err := DecodeAlarmFrame(page)
		if err != nil {
			return nil, err
		}
		out[tick] = alarms
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
