// Package controlplane turns the single-process mlops pipeline into a
// small distributed serving system, modeled on the paper's Figure 6
// deployment loop: one control-plane process owns the data pipeline,
// model registry and monitoring, and N node daemons each own a
// deterministic slice of the fleet's DIMMs.
//
// The control plane exposes an HTTP API (stdlib net/http only) to ingest
// event batches as BMC text log lines, query the emitted alarm stream,
// list/promote/rollback registry models — artifacts served as the
// versioned model envelope, cache-busted by the registry's promotion
// epoch — pause/resume serving, and a hand-rolled Prometheus
// text-exposition /metrics endpoint.
//
// Distribution preserves the repo's core invariant: N node daemons
// replay a fleet to the byte-identical alarm stream of the single-process
// engine, surviving a node restart mid-stream. Three mechanisms carry
// that guarantee:
//
//   - Deterministic partition: DIMMs hash onto Slots hash slots with the
//     serving engine's own FNV-1a function (mlops.DIMMShard); node i of N
//     owns the contiguous slot range [i·S/N, (i+1)·S/N). Per-DIMM serving
//     state is independent, so any partition emits the same alarms.
//   - Tick journal: every ingested batch is appended to a journal with
//     the production model version pinned at append time. Delivery to
//     each node is cursor-based and idempotent (journal index on the
//     wire); a tick's alarms are emitted — merged in (Time, DIMM) order —
//     only when every owning node has served it, strictly in journal
//     order. A dead node stalls emission but never reorders it.
//   - Catch-up replay: a rejoining node (same name, fresh state) has its
//     cursor reset and the full journal re-delivered, each tick pinned to
//     its historical model version, so throttle/cooldown state rebuilds
//     exactly; alarms from already-emitted ticks are discarded as
//     duplicates.
package controlplane

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"memfp/internal/mlops"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

// ErrNotReady reports an ingest attempted before every expected node
// daemon has joined.
var ErrNotReady = errors.New("controlplane: waiting for node daemons to join")

// Config assembles a control-plane server around a pipeline.
type Config struct {
	// Pipeline supplies the platform, feature store, registry, monitor
	// and model name. Required.
	Pipeline *mlops.Pipeline
	// ExpectNodes is the node-daemon count the fleet is partitioned
	// across; 0 serves in-process through the pipeline's own sharded
	// engine (no daemons, same HTTP API).
	ExpectNodes int
	// Slots is the hash-slot count DIMMs partition into before slots map
	// onto nodes (default 64). Fixed for the lifetime of the fleet.
	Slots int
	// Timeout bounds each forwarded node request (default 10s).
	Timeout time.Duration
}

// tickRec is one journaled ingest batch.
type tickRec struct {
	slices  [][]trace.Event // per node index
	res     [][]mlops.Alarm // per node index, until emitted
	served  []bool          // per node index
	version int             // production model version pinned at append
	done    bool            // alarms emitted
}

// nodeRec is one registered node daemon.
type nodeRec struct {
	name     string
	addr     string
	index    int
	sent     int // next journal index to deliver
	alive    bool
	lastBeat time.Time
	lastErr  error
	stats    NodeStats
}

// Server is the control plane. One ingest driver at a time: IngestTick,
// Flush and Resume serialize on the server mutex and hold it across node
// round-trips; the query/registry/join endpoints stay responsive because
// they either skip that mutex or only touch it briefly.
type Server struct {
	cfg    Config
	pipe   *mlops.Pipeline
	engine *mlops.Server // local serving engine (ExpectNodes == 0)
	client *http.Client
	mux    *http.ServeMux

	mu       sync.Mutex
	parts    map[trace.DIMMID]platform.DIMMPart
	nodes    []*nodeRec
	byName   map[string]*nodeRec
	journal  []*tickRec
	nextEmit int // journal index of the next unemitted tick
	ticks    int
	started  bool // first distributed tick journaled; topology frozen
	paused   bool // distributed-mode pause (local mode delegates to engine)
	alarms   []mlops.Alarm
}

// New builds a control-plane server. With cfg.ExpectNodes == 0 it serves
// locally through the pipeline's sharded engine; otherwise ingest blocks
// (ErrNotReady) until every node daemon has joined.
func New(cfg Config) (*Server, error) {
	if cfg.Pipeline == nil {
		return nil, errors.New("controlplane: Config.Pipeline is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 64
	}
	if cfg.ExpectNodes > cfg.Slots {
		return nil, fmt.Errorf("controlplane: %d nodes exceed %d hash slots", cfg.ExpectNodes, cfg.Slots)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	s := &Server{
		cfg:    cfg,
		pipe:   cfg.Pipeline,
		client: &http.Client{Timeout: cfg.Timeout},
		parts:  map[trace.DIMMID]platform.DIMMPart{},
		byName: map[string]*nodeRec{},
	}
	if cfg.ExpectNodes == 0 {
		s.engine = cfg.Pipeline.NewServer()
	}
	s.routes()
	return s, nil
}

// Handler returns the HTTP API (the /api/v1 tree plus /metrics).
func (s *Server) Handler() http.Handler { return s.mux }

// Pipeline returns the wrapped pipeline.
func (s *Server) Pipeline() *mlops.Pipeline { return s.pipe }

// RegisterDIMM announces a DIMM's static attributes before its events
// can be served — the control plane records the part for wire encoding
// and, in local mode, registers it with the engine. Nodes learn DIMMs
// from the part numbers on forwarded log lines.
func (s *Server) RegisterDIMM(id trace.DIMMID, part platform.DIMMPart) {
	s.mu.Lock()
	s.parts[id] = part
	s.mu.Unlock()
	if s.engine != nil {
		s.engine.RegisterDIMM(id, part)
	}
}

// Ready reports whether ingest can proceed (local mode is always ready).
func (s *Server) Ready() bool {
	if s.engine != nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes) >= s.cfg.ExpectNodes
}

// Paused reports whether serving is inside a maintenance window.
func (s *Server) Paused() bool {
	if s.engine != nil {
		return s.engine.Paused()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

// TickResult is one IngestTick/Flush/Resume outcome: the alarms whose
// emission this call completed (in stream order) and how much accepted
// work is still unserved — journaled ticks awaiting a node in
// distributed mode, held events during a local maintenance window.
type TickResult struct {
	Alarms  []mlops.Alarm
	Pending int
}

// IngestTick accepts one event micro-batch — the serving tick. In local
// mode it is mlops.Server.IngestBatch behind the control-plane bookkeeping;
// in distributed mode the batch is journaled with the current production
// model version and delivered to the owning nodes, and every tick whose
// owners have all responded emits its merged alarms in journal order.
// A dead node leaves ticks pending (no error); they emit after the node
// rejoins and a later tick or Flush re-drives delivery.
func (s *Server) IngestTick(events []trace.Event) (TickResult, error) {
	if s.engine != nil {
		alarms, err := s.engine.IngestBatch(events)
		s.mu.Lock()
		s.ticks++
		s.alarms = append(s.alarms, alarms...)
		s.mu.Unlock()
		return TickResult{Alarms: alarms, Pending: s.engine.HeldEvents()}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.nodes) < s.cfg.ExpectNodes {
		return TickResult{}, ErrNotReady
	}
	for _, e := range events {
		if _, ok := s.parts[e.DIMM]; !ok {
			return TickResult{}, fmt.Errorf("controlplane: event for unregistered DIMM %s", e.DIMM)
		}
	}
	pv, err := s.pipe.Registry.Production(s.pipe.ModelName)
	if err != nil {
		return TickResult{}, err
	}
	s.started = true
	n := s.cfg.ExpectNodes
	t := &tickRec{
		slices:  s.partitionLocked(events),
		res:     make([][]mlops.Alarm, n),
		served:  make([]bool, n),
		version: pv.Version,
	}
	if mon := s.pipe.Monitor; mon != nil {
		for _, e := range events {
			mon.CountEvent(e)
		}
	}
	s.journal = append(s.journal, t)
	s.ticks++
	if s.paused {
		return TickResult{Pending: len(s.journal) - s.nextEmit}, nil
	}
	out := s.deliverLocked()
	return TickResult{Alarms: out, Pending: len(s.journal) - s.nextEmit}, nil
}

// Flush re-drives delivery of pending ticks (after a node rejoin)
// without ingesting anything new.
func (s *Server) Flush() (TickResult, error) {
	if s.engine != nil {
		return TickResult{Pending: s.engine.HeldEvents()}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.paused {
		return TickResult{Pending: len(s.journal) - s.nextEmit}, nil
	}
	out := s.deliverLocked()
	return TickResult{Alarms: out, Pending: len(s.journal) - s.nextEmit}, nil
}

// Pause opens a maintenance window: local mode holds events in the
// engine's queue, distributed mode journals ticks without delivering.
func (s *Server) Pause() {
	if s.engine != nil {
		s.engine.Pause()
		return
	}
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume closes the maintenance window and drains what it held.
func (s *Server) Resume() (TickResult, error) {
	if s.engine != nil {
		alarms, err := s.engine.Resume()
		s.mu.Lock()
		s.alarms = append(s.alarms, alarms...)
		s.mu.Unlock()
		return TickResult{Alarms: alarms, Pending: s.engine.HeldEvents()}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paused = false
	out := s.deliverLocked()
	return TickResult{Alarms: out, Pending: len(s.journal) - s.nextEmit}, nil
}

// AlarmsSince returns the emitted alarm stream from cursor i on, plus
// the next cursor.
func (s *Server) AlarmsSince(i int) ([]mlops.Alarm, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i > len(s.alarms) {
		i = len(s.alarms)
	}
	return append([]mlops.Alarm(nil), s.alarms[i:]...), len(s.alarms)
}

// MemoryStats merges serving-memory telemetry: the local engine's in
// local mode, the node heartbeats' in distributed mode.
func (s *Server) MemoryStats() mlops.MemoryStats {
	if s.engine != nil {
		return s.engine.MemoryStats()
	}
	var ms mlops.MemoryStats
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.nodes {
		ms.ResidentBytes += n.stats.ResidentBytes
		ms.Evictions += n.stats.Evictions
		ms.Rehydrations += n.stats.Rehydrations
		ms.Compactions += n.stats.Compactions
		ms.CompactedEvents += n.stats.CompactedEvents
	}
	return ms
}

// partitionLocked splits a batch into per-node slices through the
// slot assignment, preserving arrival order within each node.
func (s *Server) partitionLocked(events []trace.Event) [][]trace.Event {
	out := make([][]trace.Event, s.cfg.ExpectNodes)
	for _, e := range events {
		ni := s.nodeForSlot(mlops.DIMMShard(e.DIMM, s.cfg.Slots))
		out[ni] = append(out[ni], e)
	}
	return out
}

// slotRange returns node i's contiguous hash-slot range [from, to).
func (s *Server) slotRange(i int) (from, to int) {
	n := s.cfg.ExpectNodes
	return i * s.cfg.Slots / n, (i + 1) * s.cfg.Slots / n
}

func (s *Server) nodeForSlot(slot int) int {
	for i := 0; i < s.cfg.ExpectNodes; i++ {
		if _, to := s.slotRange(i); slot < to {
			return i
		}
	}
	return s.cfg.ExpectNodes - 1
}

// deliverLocked pushes every node's unserved journal suffix in order,
// then emits every tick that has become fully served. Node round-trips
// happen with the server mutex held: the control plane admits one
// ingest driver at a time by design, and no handler a node calls back
// into (artifact pulls) takes this mutex.
func (s *Server) deliverLocked() []mlops.Alarm {
	for _, n := range s.nodes {
		for n.sent < len(s.journal) {
			t := s.journal[n.sent]
			ev := t.slices[n.index]
			if len(ev) > 0 {
				alarms, err := s.forward(n, n.sent, t.version, ev)
				if err != nil {
					n.alive = false
					n.lastErr = err
					break
				}
				n.alive = true
				if !t.done {
					t.res[n.index] = alarms
				}
			}
			t.served[n.index] = true
			n.sent++
		}
	}
	return s.emitLocked()
}

// emitLocked emits alarms for fully-served ticks, strictly in journal
// order, merged (Time, DIMM) within each tick — the same total order
// the single-process engine produces.
func (s *Server) emitLocked() []mlops.Alarm {
	var out []mlops.Alarm
	for s.nextEmit < len(s.journal) {
		t := s.journal[s.nextEmit]
		ready := true
		for _, sv := range t.served {
			if !sv {
				ready = false
				break
			}
		}
		if !ready {
			break
		}
		merged := mergeAlarmSlices(t.res)
		if mon := s.pipe.Monitor; mon != nil {
			for _, a := range merged {
				mon.CountAlarm(a)
			}
		}
		s.alarms = append(s.alarms, merged...)
		out = append(out, merged...)
		t.res, t.done = nil, true
		s.nextEmit++
	}
	return out
}

// mergeAlarmSlices flattens per-node alarm slices into (Time, DIMM)
// order — total, because at most one alarm exists per (Time, DIMM).
func mergeAlarmSlices(per [][]mlops.Alarm) []mlops.Alarm {
	n := 0
	for _, as := range per {
		n += len(as)
	}
	if n == 0 {
		return nil
	}
	out := make([]mlops.Alarm, 0, n)
	for _, as := range per {
		out = append(out, as...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].DIMM.Less(out[j].DIMM)
	})
	return out
}

// forward delivers one tick slice to a node as BMC text lines, pinned to
// the tick's model version and journal index.
func (s *Server) forward(n *nodeRec, tick, version int, events []trace.Event) ([]mlops.Alarm, error) {
	var body bytes.Buffer
	for _, e := range events {
		fmt.Fprintln(&body, trace.EncodeEvent(e, s.parts[e.DIMM]))
	}
	req, err := http.NewRequest(http.MethodPost, n.addr+"/ingest", &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set(HeaderModelVersion, strconv.Itoa(version))
	req.Header.Set(HeaderTick, strconv.Itoa(tick))
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("controlplane: node %s: %w", n.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("controlplane: node %s: %s: %s", n.name, resp.Status, bytes.TrimSpace(b))
	}
	var tr TickResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return nil, fmt.Errorf("controlplane: node %s: decode response: %w", n.name, err)
	}
	out := make([]mlops.Alarm, len(tr.Alarms))
	for i, a := range tr.Alarms {
		out[i] = fromWire(a)
	}
	return out, nil
}

// join registers (or re-registers) a node and returns its assignment.
func (s *Server) join(req JoinRequest) (JoinResponse, int, error) {
	if req.Name == "" || req.Addr == "" {
		return JoinResponse{}, http.StatusBadRequest, errors.New("join requires name and addr")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.ExpectNodes == 0 {
		return JoinResponse{}, http.StatusConflict, errors.New("control plane is serving locally; restart it with -nodes N to distribute")
	}
	n, ok := s.byName[req.Name]
	if ok {
		// Rejoin: same name, fresh node state. Reset the delivery cursor
		// so the full journal replays — under each tick's pinned model
		// version — rebuilding the node's serving state exactly.
		n.addr = req.Addr
		n.sent = 0
		n.alive = true
		n.lastBeat = time.Now()
		n.lastErr = nil
	} else {
		if s.started {
			return JoinResponse{}, http.StatusConflict,
				fmt.Errorf("topology frozen after first tick; known nodes may rejoin by name")
		}
		if len(s.nodes) >= s.cfg.ExpectNodes {
			return JoinResponse{}, http.StatusConflict,
				fmt.Errorf("fleet already has %d nodes", s.cfg.ExpectNodes)
		}
		n = &nodeRec{name: req.Name, addr: req.Addr, index: len(s.nodes), alive: true, lastBeat: time.Now()}
		s.nodes = append(s.nodes, n)
		s.byName[req.Name] = n
	}
	from, to := s.slotRange(n.index)
	resp := JoinResponse{
		Index:    n.index,
		Nodes:    s.cfg.ExpectNodes,
		Slots:    s.cfg.Slots,
		SlotFrom: from,
		SlotTo:   to,
		Platform: string(s.pipe.Platform),
		Model:    s.pipe.ModelName,
		Epoch:    s.pipe.Registry.Epoch(),
	}
	// Serving parameters the node engine must mirror. A throwaway local
	// engine would drift from pipeline defaults; read them from a probe
	// engine built the same way.
	probe := s.pipe.NewServer()
	resp.PredictEvery = int64(probe.PredictEvery)
	resp.Cooldown = int64(probe.Cooldown)
	resp.MicroBatch = probe.MicroBatch
	resp.MemoryBudget = probe.MemoryBudget
	if pv, err := s.pipe.Registry.Production(s.pipe.ModelName); err == nil {
		resp.Version = pv.Version
	}
	return resp, http.StatusOK, nil
}

// heartbeat refreshes a node's liveness and telemetry.
func (s *Server) heartbeat(req HeartbeatRequest) (HeartbeatResponse, int, error) {
	s.mu.Lock()
	n, ok := s.byName[req.Name]
	if ok {
		n.alive = true
		n.lastBeat = time.Now()
		n.stats = req.Stats
	}
	s.mu.Unlock()
	if !ok {
		return HeartbeatResponse{}, http.StatusNotFound, fmt.Errorf("unknown node %q (join first)", req.Name)
	}
	resp := HeartbeatResponse{Epoch: s.pipe.Registry.Epoch()}
	if pv, err := s.pipe.Registry.Production(s.pipe.ModelName); err == nil {
		resp.Version = pv.Version
	}
	return resp, http.StatusOK, nil
}

// status snapshots the control plane.
func (s *Server) status() StatusResponse {
	mon := s.pipe.Monitor
	st := StatusResponse{
		Platform:    string(s.pipe.Platform),
		Model:       s.pipe.ModelName,
		Mode:        "distributed",
		Epoch:       s.pipe.Registry.Epoch(),
		Paused:      s.Paused(),
		ExpectNodes: s.cfg.ExpectNodes,
	}
	if s.engine != nil {
		st.Mode = "local"
	}
	if mon != nil {
		st.Events = int64(mon.EventCount(trace.TypeCE) + mon.EventCount(trace.TypeUE) + mon.EventCount(trace.TypeStorm))
		st.Predictions = int64(mon.PredictionCount())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Ticks = s.ticks
	st.Alarms = len(s.alarms)
	if s.engine != nil {
		st.Pending = s.engine.HeldEvents()
	} else {
		st.Pending = len(s.journal) - s.nextEmit
	}
	for _, n := range s.nodes {
		from, to := s.slotRange(n.index)
		st.Nodes = append(st.Nodes, NodeInfo{
			Name: n.name, Addr: n.addr, Index: n.index,
			SlotFrom: from, SlotTo: to,
			Alive:      n.alive,
			BeatAgeSec: time.Since(n.lastBeat).Seconds(),
			SentTicks:  n.sent,
			Stats:      n.stats,
		})
		st.Predictions += n.stats.Predictions
	}
	return st
}
