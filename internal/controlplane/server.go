// Package controlplane turns the single-process mlops pipeline into a
// small distributed serving system, modeled on the paper's Figure 6
// deployment loop: one control-plane process owns the data pipeline,
// model registry and monitoring, and N node daemons each own a
// deterministic slice of the fleet's DIMMs.
//
// The control plane exposes an HTTP API (stdlib net/http only) to ingest
// event batches — as BMC text log lines or as the compact MFE1 binary
// frame, negotiated per request by Content-Type — query the emitted
// alarm stream, list/promote/rollback registry models, pause/resume
// serving, and a hand-rolled Prometheus text-exposition /metrics
// endpoint.
//
// Distribution preserves the repo's core invariant: N node daemons
// replay a fleet to the byte-identical alarm stream of the single-process
// engine, surviving a node restart mid-stream. Four mechanisms carry
// that guarantee:
//
//   - Deterministic partition: DIMMs hash onto Slots hash slots with the
//     serving engine's own FNV-1a function (mlops.DIMMShard); node i of N
//     owns the contiguous slot range [i·S/N, (i+1)·S/N). Per-DIMM serving
//     state is independent, so any partition emits the same alarms.
//   - Tick journal: every ingested batch is appended to a journal with
//     the production model version pinned at append time. Delivery to
//     each node is cursor-based and idempotent (journal index on the
//     wire); a tick's alarms are emitted — merged in (Time, DIMM) order —
//     only when every owning node has served it, strictly in journal
//     order. A dead node stalls emission but never reorders it.
//   - Pipelined fan-out: one sender goroutine per node streams batches
//     of up to Window unserved ticks over persistent connections as
//     MFT1 binary frames (falling back to per-tick BMC text lines if the
//     node answers 404/405), decoding responses off the journal lock.
//     IngestTick only journals and applies backpressure, so the driver
//     overlaps with delivery on every node.
//   - Checkpointed truncation: every CheckpointEvery emitted ticks the
//     control plane captures each node's engine snapshot (its serving
//     state after exactly the ticks delivered so far) into the spill
//     store, advancing that node's low-water mark. Journal entries below
//     every node's mark and the emission cursor are truncated — spilled
//     to the store as an archival MFT1 segment — bounding journal
//     memory. A rejoining node (same name, fresh state) restores the
//     snapshot and replays only the journal suffix past its checkpoint,
//     each tick pinned to its historical model version, so
//     throttle/cooldown state rebuilds exactly; alarms from
//     already-emitted ticks are discarded as duplicates.
package controlplane

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"memfp/internal/mlops"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

// ErrNotReady reports an ingest attempted before every expected node
// daemon has joined.
var ErrNotReady = errors.New("controlplane: waiting for node daemons to join")

// Config assembles a control-plane server around a pipeline.
type Config struct {
	// Pipeline supplies the platform, feature store, registry, monitor
	// and model name. Required.
	Pipeline *mlops.Pipeline
	// ExpectNodes is the node-daemon count the fleet is partitioned
	// across; 0 serves in-process through the pipeline's own sharded
	// engine (no daemons, same HTTP API).
	ExpectNodes int
	// Slots is the hash-slot count DIMMs partition into before slots map
	// onto nodes (default 64). Fixed for the lifetime of the fleet.
	Slots int
	// Timeout bounds each forwarded node request (default 10s).
	Timeout time.Duration
	// Window bounds each node's delivery pipeline: at most this many
	// unserved non-empty ticks ride in one batched request, and
	// IngestTick applies backpressure once a live node falls further
	// behind the journal head (default 8).
	Window int
	// CheckpointEvery schedules a snapshot from every node each time
	// this many ticks have been emitted (default 64), advancing the
	// journal's truncation low-water mark.
	CheckpointEvery int
	// Spill stores node checkpoints and truncated journal segments
	// (default: in-memory).
	Spill mlops.SpillStore
}

// tickRec is one journaled ingest batch.
type tickRec struct {
	slices  [][]trace.Event // per node index
	res     [][]mlops.Alarm // per node index, until emitted
	served  []bool          // per node index
	version int             // production model version pinned at append
	done    bool            // alarms emitted
}

// nodeRec is one registered node daemon.
type nodeRec struct {
	name     string
	addr     string
	index    int
	sent     int // next journal index to deliver (advanced optimistically)
	epoch    int // bumped on rejoin; invalidates stale in-flight responses
	inflight bool
	wantCkpt bool
	ckptTick int // ticks < ckptTick are covered by the stored snapshot
	textWire bool
	alive    bool
	lastBeat time.Time
	lastErr  error
	stats    NodeStats
}

// Server is the control plane. One ingest driver at a time: IngestTick,
// Flush and Resume serialize on the server mutex; per-node sender
// goroutines deliver journal batches concurrently, holding the mutex
// only to pick up work and record results — node round-trips and frame
// codecs run off the lock.
type Server struct {
	cfg    Config
	pipe   *mlops.Pipeline
	engine *mlops.Server // local serving engine (ExpectNodes == 0)
	client *http.Client
	mux    *http.ServeMux
	spill  mlops.SpillStore

	mu          sync.Mutex
	cond        *sync.Cond // delivery/emission progress; senders park here
	parts       map[trace.DIMMID]platform.DIMMPart
	nodes       []*nodeRec
	byName      map[string]*nodeRec
	journal     []*tickRec // journal[i] holds tick journalBase+i
	journalBase int        // first journal index still in memory
	journalHigh int        // high-water mark of in-memory journal depth
	truncations int
	truncated   int   // ticks truncated out of the journal
	spillBytes  int64 // bytes written to the spill store
	sinceCkpt   int   // ticks emitted since the last checkpoint request
	nextEmit    int   // journal index of the next unemitted tick
	retCursor   int   // alarms already returned to the ingest driver
	ticks       int
	started     bool // first distributed tick journaled; topology frozen
	paused      bool // distributed-mode pause (local mode delegates to engine)
	closed      bool
	alarms      []mlops.Alarm
	ownerBuf    []int32 // partitionLocked scratch: per-event owner node
}

// New builds a control-plane server. With cfg.ExpectNodes == 0 it serves
// locally through the pipeline's sharded engine; otherwise ingest blocks
// (ErrNotReady) until every node daemon has joined.
func New(cfg Config) (*Server, error) {
	if cfg.Pipeline == nil {
		return nil, errors.New("controlplane: Config.Pipeline is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 64
	}
	if cfg.ExpectNodes > cfg.Slots {
		return nil, fmt.Errorf("controlplane: %d nodes exceed %d hash slots", cfg.ExpectNodes, cfg.Slots)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 64
	}
	if cfg.Spill == nil {
		cfg.Spill = mlops.NewMemSpill()
	}
	s := &Server{
		cfg:    cfg,
		pipe:   cfg.Pipeline,
		client: &http.Client{Timeout: cfg.Timeout},
		spill:  cfg.Spill,
		parts:  map[trace.DIMMID]platform.DIMMPart{},
		byName: map[string]*nodeRec{},
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.ExpectNodes == 0 {
		s.engine = cfg.Pipeline.NewServer()
	}
	s.routes()
	return s, nil
}

// Handler returns the HTTP API (the /api/v1 tree plus /metrics).
func (s *Server) Handler() http.Handler { return s.mux }

// Pipeline returns the wrapped pipeline.
func (s *Server) Pipeline() *mlops.Pipeline { return s.pipe }

// Close stops the per-node sender goroutines. Pending journal state is
// left intact; Close is for orderly shutdown, not draining (use Flush).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// RegisterDIMM announces a DIMM's static attributes before its events
// can be served — the control plane records the part for wire encoding
// and, in local mode, registers it with the engine. Nodes learn DIMMs
// from the part numbers on forwarded frames.
func (s *Server) RegisterDIMM(id trace.DIMMID, part platform.DIMMPart) {
	s.mu.Lock()
	s.parts[id] = part
	s.mu.Unlock()
	if s.engine != nil {
		s.engine.RegisterDIMM(id, part)
	}
}

// Ready reports whether ingest can proceed (local mode is always ready).
func (s *Server) Ready() bool {
	if s.engine != nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes) >= s.cfg.ExpectNodes
}

// Paused reports whether serving is inside a maintenance window.
func (s *Server) Paused() bool {
	if s.engine != nil {
		return s.engine.Paused()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

// TickResult is one IngestTick/Flush/Resume outcome: the alarms whose
// emission this call completed (in stream order) and how much accepted
// work is still unserved — journaled ticks awaiting a node in
// distributed mode, held events during a local maintenance window.
type TickResult struct {
	Alarms  []mlops.Alarm
	Pending int
}

// journalEnd returns one past the last journal index.
func (s *Server) journalEnd() int { return s.journalBase + len(s.journal) }

// rec returns the record at an absolute journal index.
func (s *Server) rec(i int) *tickRec { return s.journal[i-s.journalBase] }

// IngestTick accepts one event micro-batch — the serving tick. In local
// mode it is mlops.Server.IngestBatch behind the control-plane
// bookkeeping; in distributed mode the batch is journaled with the
// current production model version for the per-node senders to stream
// out, and the call returns every alarm whose emission completed since
// the previous driver call (journal order is preserved across calls).
// Backpressure: the call waits while any live node is more than Window
// ticks behind. A dead node leaves ticks pending (no error); they emit
// after the node rejoins and Flush drains delivery.
func (s *Server) IngestTick(events []trace.Event) (TickResult, error) {
	if s.engine != nil {
		alarms, err := s.engine.IngestBatch(events)
		s.mu.Lock()
		s.ticks++
		s.alarms = append(s.alarms, alarms...)
		s.retCursor = len(s.alarms)
		s.mu.Unlock()
		return TickResult{Alarms: alarms, Pending: s.engine.HeldEvents()}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.nodes) < s.cfg.ExpectNodes {
		return TickResult{}, ErrNotReady
	}
	for _, e := range events {
		if _, ok := s.parts[e.DIMM]; !ok {
			return TickResult{}, fmt.Errorf("controlplane: event for unregistered DIMM %s", e.DIMM)
		}
	}
	pv, err := s.pipe.Registry.Production(s.pipe.ModelName)
	if err != nil {
		return TickResult{}, err
	}
	s.started = true
	n := s.cfg.ExpectNodes
	t := &tickRec{
		slices:  s.partitionLocked(events),
		res:     make([][]mlops.Alarm, n),
		served:  make([]bool, n),
		version: pv.Version,
	}
	// A node with no events in this tick has nothing to serve: mark it
	// served at append time so emission never waits on an empty delivery.
	for i, sl := range t.slices {
		if len(sl) == 0 {
			t.served[i] = true
		}
	}
	if mon := s.pipe.Monitor; mon != nil {
		for _, e := range events {
			mon.CountEvent(e)
		}
	}
	s.journal = append(s.journal, t)
	if d := len(s.journal); d > s.journalHigh {
		s.journalHigh = d
	}
	s.ticks++
	s.emitLocked() // an all-empty tick emits immediately
	s.cond.Broadcast()
	for !s.closed && !s.paused && s.backloggedLocked() {
		s.cond.Wait()
	}
	return s.driverResultLocked(), nil
}

// backloggedLocked reports whether any live node is more than Window
// ticks behind the journal head.
func (s *Server) backloggedLocked() bool {
	end := s.journalEnd()
	for _, n := range s.nodes {
		if n.alive && end-n.sent > s.cfg.Window {
			return true
		}
	}
	return false
}

// driverResultLocked collects the alarms emitted since the driver's last
// call and the pending-tick count.
func (s *Server) driverResultLocked() TickResult {
	var out []mlops.Alarm
	if s.retCursor < len(s.alarms) {
		out = s.alarms[s.retCursor:len(s.alarms):len(s.alarms)]
		s.retCursor = len(s.alarms)
	}
	return TickResult{Alarms: out, Pending: s.journalEnd() - s.nextEmit}
}

// quiescentLocked reports whether delivery can make no further progress:
// every live node has served the whole journal with no request or
// checkpoint outstanding.
func (s *Server) quiescentLocked() bool {
	end := s.journalEnd()
	for _, n := range s.nodes {
		if !n.alive {
			continue
		}
		if n.sent < end || n.inflight || n.wantCkpt {
			return false
		}
	}
	return true
}

// Flush waits until delivery of pending ticks quiesces (after a node
// rejoin) without ingesting anything new, and returns the alarms emitted
// since the driver's last call. With a node still dead, the remaining
// ticks stay pending.
func (s *Server) Flush() (TickResult, error) {
	if s.engine != nil {
		return TickResult{Pending: s.engine.HeldEvents()}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cond.Broadcast()
	for !s.closed && !s.paused && !s.quiescentLocked() {
		s.cond.Wait()
	}
	return s.driverResultLocked(), nil
}

// Pause opens a maintenance window: local mode holds events in the
// engine's queue, distributed mode journals ticks without delivering.
func (s *Server) Pause() {
	if s.engine != nil {
		s.engine.Pause()
		return
	}
	s.mu.Lock()
	s.paused = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Resume closes the maintenance window and drains what it held.
func (s *Server) Resume() (TickResult, error) {
	if s.engine != nil {
		alarms, err := s.engine.Resume()
		s.mu.Lock()
		s.alarms = append(s.alarms, alarms...)
		s.retCursor = len(s.alarms)
		s.mu.Unlock()
		return TickResult{Alarms: alarms, Pending: s.engine.HeldEvents()}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paused = false
	s.cond.Broadcast()
	for !s.closed && !s.paused && !s.quiescentLocked() {
		s.cond.Wait()
	}
	return s.driverResultLocked(), nil
}

// AlarmsSince returns the emitted alarm stream from cursor i on, plus
// the next cursor.
func (s *Server) AlarmsSince(i int) ([]mlops.Alarm, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i > len(s.alarms) {
		i = len(s.alarms)
	}
	return append([]mlops.Alarm(nil), s.alarms[i:]...), len(s.alarms)
}

// MemoryStats merges serving-memory telemetry: the local engine's in
// local mode, the node heartbeats' in distributed mode.
func (s *Server) MemoryStats() mlops.MemoryStats {
	if s.engine != nil {
		return s.engine.MemoryStats()
	}
	var ms mlops.MemoryStats
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.nodes {
		ms.ResidentBytes += n.stats.ResidentBytes
		ms.Evictions += n.stats.Evictions
		ms.Rehydrations += n.stats.Rehydrations
		ms.Compactions += n.stats.Compactions
		ms.CompactedEvents += n.stats.CompactedEvents
		ms.SpilledBytes += n.stats.SpilledBytes
		ms.Spills += n.stats.Spills
	}
	return ms
}

// JournalStats reports the journal's depth, truncation counters and
// spill volume.
func (s *Server) JournalStats() JournalInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalInfoLocked()
}

func (s *Server) journalInfoLocked() JournalInfo {
	return JournalInfo{
		Depth:          len(s.journal),
		DepthHighWater: s.journalHigh,
		Base:           s.journalBase,
		Truncations:    s.truncations,
		TruncatedTicks: s.truncated,
		SpillBytes:     s.spillBytes,
	}
}

// partitionLocked splits a batch into per-node slices through the
// slot assignment, preserving arrival order within each node. The
// journal retains every tick's partition until truncation, so the
// slices share one exactly-sized backing array instead of paying
// append-growth garbage per tick.
func (s *Server) partitionLocked(events []trace.Event) [][]trace.Event {
	n := s.cfg.ExpectNodes
	counts := make([]int, n)
	s.ownerBuf = s.ownerBuf[:0]
	for _, e := range events {
		ni := s.nodeForSlot(mlops.DIMMShard(e.DIMM, s.cfg.Slots))
		s.ownerBuf = append(s.ownerBuf, int32(ni))
		counts[ni]++
	}
	backing := make([]trace.Event, len(events))
	out := make([][]trace.Event, n)
	off := 0
	for i, c := range counts {
		out[i] = backing[off : off : off+c]
		off += c
	}
	for k, e := range events {
		ni := s.ownerBuf[k]
		out[ni] = append(out[ni], e)
	}
	return out
}

// slotRange returns node i's contiguous hash-slot range [from, to).
func (s *Server) slotRange(i int) (from, to int) {
	n := s.cfg.ExpectNodes
	return i * s.cfg.Slots / n, (i + 1) * s.cfg.Slots / n
}

func (s *Server) nodeForSlot(slot int) int {
	for i := 0; i < s.cfg.ExpectNodes; i++ {
		if _, to := s.slotRange(i); slot < to {
			return i
		}
	}
	return s.cfg.ExpectNodes - 1
}

// emitLocked emits alarms for fully-served ticks, strictly in journal
// order, merged (Time, DIMM) within each tick — the same total order
// the single-process engine produces. Every CheckpointEvery emitted
// ticks it schedules a snapshot on each node so the journal's truncation
// low-water mark can advance.
func (s *Server) emitLocked() {
	for s.nextEmit < s.journalEnd() {
		t := s.rec(s.nextEmit)
		ready := true
		for _, sv := range t.served {
			if !sv {
				ready = false
				break
			}
		}
		if !ready {
			break
		}
		merged := mergeAlarmSlices(t.res)
		if mon := s.pipe.Monitor; mon != nil {
			for _, a := range merged {
				mon.CountAlarm(a)
			}
		}
		s.alarms = append(s.alarms, merged...)
		t.res, t.done = nil, true
		s.nextEmit++
		s.sinceCkpt++
		if s.sinceCkpt >= s.cfg.CheckpointEvery {
			s.sinceCkpt = 0
			for _, n := range s.nodes {
				n.wantCkpt = true
			}
		}
	}
}

// maybeTruncateLocked drops journal entries below every node's
// checkpoint mark and the emission cursor, spilling the truncated
// segment to the store as an archival MFT1 frame. Entries a rejoining
// node might still need (>= its checkpoint) are never truncated.
func (s *Server) maybeTruncateLocked() {
	low := s.nextEmit
	for _, n := range s.nodes {
		if n.ckptTick < low {
			low = n.ckptTick
		}
	}
	if low <= s.journalBase {
		return
	}
	seg := make([]wireTick, 0, low-s.journalBase)
	for i := s.journalBase; i < low; i++ {
		t := s.rec(i)
		var flat []trace.Event
		for _, sl := range t.slices {
			flat = append(flat, sl...)
		}
		seg = append(seg, wireTick{tick: i, version: t.version, events: flat})
	}
	blob := appendTickFrame(nil, s.journalBase, seg, s.partNumberLocked)
	key := fmt.Sprintf("journal/%d-%d", s.journalBase, low)
	if err := s.spill.Put(key, blob); err == nil {
		s.spillBytes += int64(len(blob))
	}
	s.truncated += low - s.journalBase
	s.truncations++
	// Copy the suffix into a fresh slice so the truncated prefix's event
	// memory is actually released.
	s.journal = append([]*tickRec(nil), s.journal[low-s.journalBase:]...)
	s.journalBase = low
}

// partNumberLocked resolves a registered DIMM's part number for frame
// encoding.
func (s *Server) partNumberLocked(id trace.DIMMID) string {
	return s.parts[id].PartNumber
}

// mergeAlarmSlices flattens per-node alarm slices into (Time, DIMM)
// order — total, because at most one alarm exists per (Time, DIMM).
func mergeAlarmSlices(per [][]mlops.Alarm) []mlops.Alarm {
	n := 0
	for _, as := range per {
		n += len(as)
	}
	if n == 0 {
		return nil
	}
	out := make([]mlops.Alarm, 0, n)
	for _, as := range per {
		out = append(out, as...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].DIMM.Less(out[j].DIMM)
	})
	return out
}

// senderWorkLocked reports whether node n's sender has anything to do.
func (s *Server) senderWorkLocked(n *nodeRec) bool {
	if s.paused || !n.alive {
		return false
	}
	return n.wantCkpt || n.sent < s.journalEnd()
}

// sender is node n's delivery goroutine: it parks on the cond until the
// journal grows past the node's cursor (or a checkpoint is due), ships
// one bounded batch per round-trip, and records results. The HTTP
// round-trip and both frame codecs run with the mutex released; an
// epoch bump (node rejoin) invalidates whatever was in flight.
func (s *Server) sender(n *nodeRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed && !s.senderWorkLocked(n) {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		if n.wantCkpt {
			s.checkpointLocked(n)
			continue
		}
		s.deliverBatchLocked(n)
	}
}

// checkpointLocked captures node n's engine snapshot into the spill
// store and advances its truncation mark. The sender is sequential, so
// no batch is in flight: n.sent is exactly the tick count the snapshot
// covers.
func (s *Server) checkpointLocked(n *nodeRec) {
	covers := n.sent
	epoch := n.epoch
	addr := n.addr
	n.inflight = true
	s.mu.Unlock()
	blob, err := s.fetchCheckpoint(addr)
	s.mu.Lock()
	n.inflight = false
	if epoch != n.epoch {
		return // node rejoined mid-capture; the snapshot is stale
	}
	if err != nil {
		n.alive = false
		n.lastErr = err
		s.cond.Broadcast()
		return
	}
	if perr := s.spill.Put("ckpt/"+n.name, blob); perr == nil {
		s.spillBytes += int64(len(blob))
		n.ckptTick = covers
	}
	n.wantCkpt = false
	s.maybeTruncateLocked()
	s.cond.Broadcast()
}

// fetchCheckpoint asks a node for its engine snapshot.
func (s *Server) fetchCheckpoint(addr string) ([]byte, error) {
	resp, err := s.client.Post(addr+"/checkpoint", ContentTypeSnapshot, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("controlplane: checkpoint: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return io.ReadAll(resp.Body)
}

// deliverBatchLocked ships the next bounded batch of unserved ticks to
// node n and records the returned alarms. The cursor advances
// optimistically before the round-trip and rolls back on failure.
func (s *Server) deliverBatchLocked(n *nodeRec) {
	start := n.sent
	end := s.journalEnd()
	var batch []wireTick
	parts := map[trace.DIMMID]platform.DIMMPart{}
	upto := start
	for upto < end && len(batch) < s.cfg.Window {
		t := s.rec(upto)
		if ev := t.slices[n.index]; len(ev) > 0 {
			batch = append(batch, wireTick{tick: upto, version: t.version, events: ev})
			for _, e := range ev {
				if _, ok := parts[e.DIMM]; !ok {
					parts[e.DIMM] = s.parts[e.DIMM]
				}
			}
		}
		upto++
	}
	n.sent = upto
	if len(batch) == 0 {
		s.cond.Broadcast() // advanced over empty ticks only
		return
	}
	prune := s.nextEmit
	epoch := n.epoch
	addr := n.addr
	text := n.textWire
	name := n.name
	n.inflight = true
	s.mu.Unlock()
	res, fellBack, err := s.forwardBatch(name, addr, text, prune, batch, parts)
	s.mu.Lock()
	n.inflight = false
	if epoch != n.epoch {
		return // node rejoined; its cursor was reset to the checkpoint
	}
	if fellBack {
		n.textWire = true
	}
	if err != nil {
		n.alive = false
		n.lastErr = err
		n.sent = start
		s.cond.Broadcast()
		return
	}
	n.alive = true
	n.lastErr = nil
	for i, wt := range batch {
		if wt.tick < s.journalBase {
			continue // truncated behind us; already emitted
		}
		t := s.rec(wt.tick)
		if !t.done {
			t.res[n.index] = res[i]
		}
		t.served[n.index] = true
	}
	s.emitLocked()
	s.maybeTruncateLocked()
	s.cond.Broadcast()
}

// forwardBatch delivers a tick batch to a node. The binary MFT1 frame is
// the default; a node answering 404/405 (an older daemon) flips the
// connection to per-tick BMC text lines, reported via fellBack. The
// returned slice is parallel to batch.
func (s *Server) forwardBatch(name, addr string, text bool, prune int, batch []wireTick,
	parts map[trace.DIMMID]platform.DIMMPart) (res [][]mlops.Alarm, fellBack bool, err error) {
	if !text {
		res, err = s.forwardFrame(name, addr, prune, batch, parts)
		if err == nil || !errors.Is(err, errNoBinaryWire) {
			return res, false, err
		}
	}
	res, err = s.forwardText(name, addr, batch, parts)
	return res, !text, err
}

// errNoBinaryWire reports a node without the /ingest2 batch endpoint.
var errNoBinaryWire = errors.New("node does not speak the binary tick wire")

// forwardFrame posts one MFT1 batch to the node's /ingest2 endpoint.
func (s *Server) forwardFrame(name, addr string, prune int, batch []wireTick,
	parts map[trace.DIMMID]platform.DIMMPart) ([][]mlops.Alarm, error) {
	buf := getWireBuf()
	defer putWireBuf(buf)
	*buf = appendTickFrame((*buf)[:0], prune, batch, func(id trace.DIMMID) string {
		return parts[id].PartNumber
	})
	resp, err := s.client.Post(addr+"/ingest2", ContentTypeTicks, bytes.NewReader(*buf))
	if err != nil {
		return nil, fmt.Errorf("controlplane: node %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
		io.Copy(io.Discard, resp.Body)
		return nil, errNoBinaryWire
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("controlplane: node %s: %s: %s", name, resp.Status, bytes.TrimSpace(b))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("controlplane: node %s: read response: %w", name, err)
	}
	byTick, err := decodeRespFrame(body)
	if err != nil {
		return nil, fmt.Errorf("controlplane: node %s: %w", name, err)
	}
	out := make([][]mlops.Alarm, len(batch))
	for i, wt := range batch {
		as, ok := byTick[wt.tick]
		if !ok {
			return nil, fmt.Errorf("controlplane: node %s: response missing tick %d", name, wt.tick)
		}
		out[i] = as
	}
	return out, nil
}

// forwardText delivers a batch tick by tick as BMC text lines pinned to
// each tick's model version and journal index — the pre-binary wire,
// kept as the fallback and equivalence oracle.
func (s *Server) forwardText(name, addr string, batch []wireTick,
	parts map[trace.DIMMID]platform.DIMMPart) ([][]mlops.Alarm, error) {
	out := make([][]mlops.Alarm, len(batch))
	for i, wt := range batch {
		var body bytes.Buffer
		for _, e := range wt.events {
			fmt.Fprintln(&body, trace.EncodeEvent(e, parts[e.DIMM]))
		}
		req, err := http.NewRequest(http.MethodPost, addr+"/ingest", &body)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set(HeaderModelVersion, strconv.Itoa(wt.version))
		req.Header.Set(HeaderTick, strconv.Itoa(wt.tick))
		resp, err := s.client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("controlplane: node %s: %w", name, err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return nil, fmt.Errorf("controlplane: node %s: %s: %s", name, resp.Status, bytes.TrimSpace(b))
		}
		var tr TickResponse
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("controlplane: node %s: decode response: %w", name, err)
		}
		alarms := make([]mlops.Alarm, len(tr.Alarms))
		for j, a := range tr.Alarms {
			alarms[j] = fromWire(a)
		}
		out[i] = alarms
	}
	return out, nil
}

// join registers (or re-registers) a node and returns its assignment.
func (s *Server) join(req JoinRequest) (JoinResponse, int, error) {
	if req.Name == "" || req.Addr == "" {
		return JoinResponse{}, http.StatusBadRequest, errors.New("join requires name and addr")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.ExpectNodes == 0 {
		return JoinResponse{}, http.StatusConflict, errors.New("control plane is serving locally; restart it with -nodes N to distribute")
	}
	n, ok := s.byName[req.Name]
	if ok {
		// Rejoin: same name, fresh node state. The node restores its
		// checkpointed snapshot (serving state after exactly ckptTick
		// ticks), so the delivery cursor resets to the checkpoint — not
		// zero — and only the journal suffix replays, under each tick's
		// pinned model version.
		n.addr = req.Addr
		n.epoch++ // invalidate any in-flight response from the old process
		n.sent = n.ckptTick
		n.alive = true
		n.textWire = false
		n.lastBeat = time.Now()
		n.lastErr = nil
		s.cond.Broadcast()
	} else {
		if s.started {
			return JoinResponse{}, http.StatusConflict,
				fmt.Errorf("topology frozen after first tick; known nodes may rejoin by name")
		}
		if len(s.nodes) >= s.cfg.ExpectNodes {
			return JoinResponse{}, http.StatusConflict,
				fmt.Errorf("fleet already has %d nodes", s.cfg.ExpectNodes)
		}
		n = &nodeRec{name: req.Name, addr: req.Addr, index: len(s.nodes), alive: true, lastBeat: time.Now()}
		s.nodes = append(s.nodes, n)
		s.byName[req.Name] = n
		go s.sender(n)
	}
	from, to := s.slotRange(n.index)
	resp := JoinResponse{
		Index:          n.index,
		Nodes:          s.cfg.ExpectNodes,
		Slots:          s.cfg.Slots,
		SlotFrom:       from,
		SlotTo:         to,
		Platform:       string(s.pipe.Platform),
		Model:          s.pipe.ModelName,
		Epoch:          s.pipe.Registry.Epoch(),
		CheckpointTick: n.ckptTick,
	}
	// Serving parameters the node engine must mirror. A throwaway local
	// engine would drift from pipeline defaults; read them from a probe
	// engine built the same way.
	probe := s.pipe.NewServer()
	resp.PredictEvery = int64(probe.PredictEvery)
	resp.Cooldown = int64(probe.Cooldown)
	resp.MicroBatch = probe.MicroBatch
	resp.MemoryBudget = probe.MemoryBudget
	if pv, err := s.pipe.Registry.Production(s.pipe.ModelName); err == nil {
		resp.Version = pv.Version
	}
	return resp, http.StatusOK, nil
}

// checkpointBlob returns a node's stored snapshot for its rejoin
// restore.
func (s *Server) checkpointBlob(name string) ([]byte, error) {
	s.mu.Lock()
	_, known := s.byName[name]
	s.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("unknown node %q", name)
	}
	return s.spill.Get("ckpt/" + name)
}

// heartbeat refreshes a node's liveness and telemetry.
func (s *Server) heartbeat(req HeartbeatRequest) (HeartbeatResponse, int, error) {
	s.mu.Lock()
	n, ok := s.byName[req.Name]
	if ok {
		n.alive = true
		n.lastBeat = time.Now()
		n.stats = req.Stats
		s.cond.Broadcast() // a revived node's sender can resume
	}
	s.mu.Unlock()
	if !ok {
		return HeartbeatResponse{}, http.StatusNotFound, fmt.Errorf("unknown node %q (join first)", req.Name)
	}
	resp := HeartbeatResponse{Epoch: s.pipe.Registry.Epoch()}
	if pv, err := s.pipe.Registry.Production(s.pipe.ModelName); err == nil {
		resp.Version = pv.Version
	}
	return resp, http.StatusOK, nil
}

// status snapshots the control plane.
func (s *Server) status() StatusResponse {
	mon := s.pipe.Monitor
	st := StatusResponse{
		Platform:    string(s.pipe.Platform),
		Model:       s.pipe.ModelName,
		Mode:        "distributed",
		Epoch:       s.pipe.Registry.Epoch(),
		Paused:      s.Paused(),
		ExpectNodes: s.cfg.ExpectNodes,
	}
	if s.engine != nil {
		st.Mode = "local"
	}
	if mon != nil {
		st.Events = int64(mon.EventCount(trace.TypeCE) + mon.EventCount(trace.TypeUE) + mon.EventCount(trace.TypeStorm))
		st.Predictions = int64(mon.PredictionCount())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Ticks = s.ticks
	st.Alarms = len(s.alarms)
	if s.engine != nil {
		st.Pending = s.engine.HeldEvents()
	} else {
		st.Pending = s.journalEnd() - s.nextEmit
		ji := s.journalInfoLocked()
		st.Journal = &ji
	}
	for _, n := range s.nodes {
		from, to := s.slotRange(n.index)
		st.Nodes = append(st.Nodes, NodeInfo{
			Name: n.name, Addr: n.addr, Index: n.index,
			SlotFrom: from, SlotTo: to,
			Alive:      n.alive,
			BeatAgeSec: time.Since(n.lastBeat).Seconds(),
			SentTicks:  n.sent,
			Checkpoint: n.ckptTick,
			Stats:      n.stats,
		})
		st.Predictions += n.stats.Predictions
	}
	return st
}
