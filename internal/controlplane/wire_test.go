package controlplane

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"memfp/internal/mlops"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

// randAlarms builds a page of random alarms, including adversarial
// scores whose decimal renderings are lossy — the raw-bits codec must
// not care.
func randAlarms(rng *rand.Rand, n int) []mlops.Alarm {
	platforms := platform.All()
	models := []string{"purley-rf", "purley-rf-v2", "whitley-gbdt"}
	out := make([]mlops.Alarm, 0, n)
	tm := int64(rng.Intn(1000))
	for i := 0; i < n; i++ {
		tm += int64(rng.Intn(2000) - 200) // deltas may be negative
		out = append(out, mlops.Alarm{
			Time: trace.Minutes(tm),
			DIMM: trace.DIMMID{
				Platform: platforms[rng.Intn(len(platforms))],
				Server:   rng.Intn(100000),
				Slot:     rng.Intn(24),
			},
			Score: rng.Float64(),
			Model: models[rng.Intn(len(models))],
		})
	}
	return out
}

// TestAlarmFrameMatchesJSON is the alarm wire's equivalence oracle: over
// random pages, the binary frame must decode to exactly what the JSON
// codec round-trips — same alarms, same float64 bits.
func TestAlarmFrameMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		alarms := randAlarms(rng, rng.Intn(60))

		frame := AppendAlarmFrame(nil, alarms)
		got, err := DecodeAlarmFrame(frame)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(got) != len(alarms) {
			t.Fatalf("trial %d: %d alarms, want %d", trial, len(got), len(alarms))
		}

		blob, err := json.Marshal(toWireSlice(alarms))
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON []AlarmJSON
		if err := json.Unmarshal(blob, &viaJSON); err != nil {
			t.Fatal(err)
		}
		for i := range alarms {
			if got[i] != fromWire(viaJSON[i]) {
				t.Fatalf("trial %d alarm %d: binary %+v != JSON %+v", trial, i, got[i], fromWire(viaJSON[i]))
			}
		}

		// Determinism: equal pages encode to equal bytes.
		if !bytes.Equal(frame, AppendAlarmFrame(nil, alarms)) {
			t.Fatalf("trial %d: alarm frame encoding not deterministic", trial)
		}
	}
}

// TestAlarmFrameRejectsCorruption truncates and mutates valid frames:
// decoding must fail cleanly or parse — never panic.
func TestAlarmFrameRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	frame := AppendAlarmFrame(nil, randAlarms(rng, 40))
	for cut := 0; cut < len(frame); cut += 3 {
		DecodeAlarmFrame(frame[:cut]) // must not panic
	}
	for i := 0; i < len(frame); i += 2 {
		mutated := bytes.Clone(frame)
		mutated[i] ^= 0xFF
		DecodeAlarmFrame(mutated) // must not panic
	}
	if _, err := DecodeAlarmFrame(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := DecodeAlarmFrame([]byte("XXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestTickAndRespFrameRoundTrip exercises the fan-out frames end to end:
// a tick batch encodes, decodes to the same events in the same order,
// and the matching response frame maps every tick back to its alarms.
func TestTickAndRespFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := fleet(t)
	events := f.all[:200]
	partOf := func(id trace.DIMMID) string { return f.parts[id].PartNumber }

	ticks := []wireTick{
		{tick: 7, version: 1, events: events[:80]},
		{tick: 9, version: 1, events: events[80:150]},
		{tick: 12, version: 2, events: events[150:]},
	}
	frame := appendTickFrame(nil, 5, ticks, partOf)
	prune, got, err := decodeTickFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if prune != 5 || len(got) != len(ticks) {
		t.Fatalf("prune=%d nTicks=%d, want 5 and %d", prune, len(got), len(ticks))
	}
	for i, dt := range got {
		if dt.tick != ticks[i].tick || dt.version != ticks[i].version {
			t.Fatalf("tick %d header %d/v%d, want %d/v%d", i, dt.tick, dt.version, ticks[i].tick, ticks[i].version)
		}
		if len(dt.events) != len(ticks[i].events) {
			t.Fatalf("tick %d: %d events, want %d", i, len(dt.events), len(ticks[i].events))
		}
		for j := range dt.events {
			if dt.events[j] != ticks[i].events[j] {
				t.Fatalf("tick %d event %d diverged", i, j)
			}
			if dt.parts[j] != partOf(dt.events[j].DIMM) {
				t.Fatalf("tick %d event %d part %q, want %q", i, j, dt.parts[j], partOf(dt.events[j].DIMM))
			}
		}
	}

	// Non-ascending tick indices are a protocol violation.
	if _, _, err := decodeTickFrame(appendTickFrame(nil, 0, []wireTick{
		{tick: 9, version: 1}, {tick: 7, version: 1},
	}, partOf)); err == nil {
		t.Fatal("descending tick indices accepted")
	}

	idx := []int{7, 9, 12}
	pages := [][]mlops.Alarm{randAlarms(rng, 5), nil, randAlarms(rng, 3)}
	resp := appendRespFrame(nil, idx, pages)
	byTick, err := decodeRespFrame(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(byTick) != 3 {
		t.Fatalf("%d response ticks, want 3", len(byTick))
	}
	for i, tk := range idx {
		as := byTick[tk]
		if len(as) != len(pages[i]) {
			t.Fatalf("tick %d: %d alarms, want %d", tk, len(as), len(pages[i]))
		}
		for j := range as {
			if as[j] != pages[i][j] {
				t.Fatalf("tick %d alarm %d diverged", tk, j)
			}
		}
	}
}
