package controlplane

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"memfp/internal/eval"
	"memfp/internal/mlops"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

// Node is one data-plane daemon: it joins a control plane, receives a
// deterministic hash-slot range, runs a real sharded serving engine over
// its slice of the fleet, and streams alarms back on each forwarded tick
// batch.
//
// The node is deliberately stateless across restarts — JoinOnce rebuilds
// the engine, registry mirror and tick cursor from scratch, restoring
// the control plane's stored snapshot when one exists; the journal
// suffix past the checkpoint then replays to reconstruct serving state
// exactly.
type Node struct {
	// Name identifies the node to the control plane; rejoining with the
	// same name after a restart resumes the node's slot assignment.
	Name string
	// Shards is the local engine's shard count (<= 0: one per CPU). Any
	// value yields the identical alarm stream.
	Shards int
	// Spill backs the engine's frozen-DIMM eviction under a memory
	// budget (nil: frozen records stay on the heap).
	Spill mlops.SpillStore

	client *Client
	mux    *http.ServeMux

	mu         sync.Mutex
	monitor    *mlops.Monitor
	reg        *mlops.Registry
	engine     *mlops.Server
	modelName  string
	curVersion int
	seen       map[trace.DIMMID]bool
	served     map[int][]mlops.Alarm // tick index -> alarms already returned
	lastTick   int
	restored   int // first tick past the restored checkpoint (0: fresh join)
}

// NewNode builds a node daemon for one control plane.
func NewNode(name, controlPlaneURL string) *Node {
	n := &Node{Name: name, client: NewClient(controlPlaneURL), lastTick: -1}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", n.handleIngest)
	mux.HandleFunc("POST /ingest2", n.handleIngest2)
	mux.HandleFunc("POST /checkpoint", n.handleCheckpoint)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	n.mux = mux
	return n
}

// Handler returns the node's HTTP surface (/ingest, /metrics, /healthz).
func (n *Node) Handler() http.Handler { return n.mux }

// JoinOnce registers with the control plane (selfURL is the base URL the
// control plane forwards ticks to) and builds a fresh serving engine with
// the returned parameters — mirroring the single-process engine exactly.
// When the control plane holds a checkpoint for this node (a rejoin), the
// snapshot restores into the fresh engine and the tick cursor starts at
// the checkpoint instead of zero.
func (n *Node) JoinOnce(selfURL string) error {
	resp, err := n.client.Join(JoinRequest{Name: n.Name, Addr: selfURL})
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.monitor = mlops.NewMonitor()
	n.reg = mlops.NewRegistry()
	n.modelName = resp.Model
	n.engine = mlops.NewShardedServer(platform.ID(resp.Platform), mlops.NewFeatureStore(), n.reg, resp.Model, n.monitor, n.Shards)
	n.engine.PredictEvery = trace.Minutes(resp.PredictEvery)
	n.engine.Cooldown = trace.Minutes(resp.Cooldown)
	n.engine.MicroBatch = resp.MicroBatch
	n.engine.MemoryBudget = resp.MemoryBudget
	n.engine.Spill = n.Spill
	n.curVersion = 0
	n.seen = map[trace.DIMMID]bool{}
	n.served = map[int][]mlops.Alarm{}
	n.lastTick = -1
	n.restored = 0
	if resp.Version > 0 {
		if err := n.ensureVersionLocked(resp.Version); err != nil {
			return fmt.Errorf("warm artifact pull: %w", err)
		}
	}
	if resp.CheckpointTick > 0 {
		blob, err := n.client.NodeCheckpoint(n.Name)
		if err != nil {
			return fmt.Errorf("pull checkpoint: %w", err)
		}
		if err := n.engine.RestoreSnapshot(blob); err != nil {
			return fmt.Errorf("restore checkpoint: %w", err)
		}
		// The snapshot covers ticks [0, CheckpointTick); delivery resumes
		// at CheckpointTick, so everything below it counts as served.
		n.lastTick = resp.CheckpointTick - 1
		n.restored = resp.CheckpointTick
	}
	return nil
}

// RestoredFrom reports the first tick past the checkpoint this node
// restored at its last join (0: joined fresh, no checkpoint).
func (n *Node) RestoredFrom() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.restored
}

// ensureVersion pins the node's production model to a registry version,
// pulling the artifact from the control plane if it is new here.
func (n *Node) ensureVersion(v int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ensureVersionLocked(v)
}

// ensureVersionLocked makes version v the locally-served production
// model. A version already mirrored (including an archived one — journal
// replay can pin an older version than the current promotion) is
// re-promoted; an unknown one is pulled as the versioned envelope and
// imported at its control-plane version number, so throttle/cooldown
// replay scores history under the historically-correct model.
func (n *Node) ensureVersionLocked(v int) error {
	if n.reg == nil {
		return errors.New("controlplane: node has not joined")
	}
	if v <= 0 || v == n.curVersion {
		return nil
	}
	if err := n.reg.Promote(n.modelName, v); err == nil {
		n.curVersion = v
		return nil
	}
	art, err := n.client.Artifact(n.modelName, v, "")
	if err != nil {
		return fmt.Errorf("pull artifact %s v%d: %w", n.modelName, v, err)
	}
	if _, err := n.reg.ImportVersion(n.modelName, v, platform.ID(art.Platform), art.Algorithm, art.Data, eval.Metrics{}, art.Threshold); err != nil {
		return fmt.Errorf("import artifact %s v%d: %w", n.modelName, v, err)
	}
	if err := n.reg.Promote(n.modelName, v); err != nil {
		return err
	}
	n.curVersion = v
	return nil
}

// handleIngest serves one forwarded tick: pin the tick's model version,
// ingest the batch through the real engine, and return the alarms. The
// journal index on the wire makes delivery idempotent — a tick this node
// already served replays its recorded response instead of re-ingesting.
func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	tick, err := strconv.Atoi(r.Header.Get(HeaderTick))
	if err != nil || tick < 0 {
		httpError(w, http.StatusBadRequest, "bad %s header %q", HeaderTick, r.Header.Get(HeaderTick))
		return
	}
	version, err := strconv.Atoi(r.Header.Get(HeaderModelVersion))
	if err != nil || version <= 0 {
		httpError(w, http.StatusBadRequest, "bad %s header %q", HeaderModelVersion, r.Header.Get(HeaderModelVersion))
		return
	}

	var events []trace.Event
	var parts []string
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, pn, err := trace.DecodeEvent(line)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		events = append(events, e)
		parts = append(parts, pn)
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.engine == nil {
		httpError(w, http.StatusServiceUnavailable, "node has not joined a control plane")
		return
	}
	alarms, err := n.serveTickLocked(tick, version, events, parts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, TickResponse{Alarms: toWireSlice(alarms)})
}

// serveTickLocked serves one forwarded tick through the engine — or
// replays the recorded response when the tick was already served (the
// journal index makes delivery idempotent).
func (n *Node) serveTickLocked(tick, version int, events []trace.Event, parts []string) ([]mlops.Alarm, error) {
	if tick <= n.lastTick {
		return n.served[tick], nil
	}
	if err := n.ensureVersionLocked(version); err != nil {
		return nil, err
	}
	for i, e := range events {
		if !n.seen[e.DIMM] {
			part, err := platform.PartByNumber(parts[i])
			if err != nil {
				return nil, err
			}
			n.engine.RegisterDIMM(e.DIMM, part)
			n.seen[e.DIMM] = true
		}
	}
	alarms, err := n.engine.IngestBatch(events)
	if err != nil {
		return nil, err
	}
	n.served[tick] = alarms
	n.lastTick = tick
	return alarms, nil
}

// handleIngest2 serves one MFT1 tick batch: each tick ingests (or
// replays) in journal order under its pinned model version, responses
// already returned to the control plane below the frame's prune mark are
// forgotten, and the alarms stream back as one MFR1 frame.
func (n *Node) handleIngest2(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); ct != ContentTypeTicks {
		httpError(w, http.StatusUnsupportedMediaType, "want Content-Type %s, got %q", ContentTypeTicks, ct)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	prune, ticks, err := decodeTickFrame(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.engine == nil {
		httpError(w, http.StatusServiceUnavailable, "node has not joined a control plane")
		return
	}
	for tk := range n.served {
		if tk < prune {
			delete(n.served, tk)
		}
	}
	idx := make([]int, len(ticks))
	res := make([][]mlops.Alarm, len(ticks))
	for i, dt := range ticks {
		alarms, err := n.serveTickLocked(dt.tick, dt.version, dt.events, dt.parts)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "tick %d: %v", dt.tick, err)
			return
		}
		idx[i] = dt.tick
		res[i] = alarms
	}
	buf := getWireBuf()
	defer putWireBuf(buf)
	*buf = appendRespFrame((*buf)[:0], idx, res)
	w.Header().Set("Content-Type", ContentTypeTicks+"-response")
	w.Write(*buf)
}

// handleCheckpoint snapshots the node's engine (MFS1) for the control
// plane's checkpoint store.
func (n *Node) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.engine == nil {
		httpError(w, http.StatusServiceUnavailable, "node has not joined a control plane")
		return
	}
	blob, err := n.engine.Snapshot()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", ContentTypeSnapshot)
	w.Write(blob)
}

// handleMetrics is the node's Prometheus endpoint: the common monitor
// families for this node's slice of the fleet.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	mon, engine := n.monitor, n.engine
	n.mu.Unlock()
	if mon == nil || engine == nil {
		http.Error(w, "node has not joined a control plane", http.StatusServiceUnavailable)
		return
	}
	p := &promWriter{}
	writeCommonMetrics(p, mon, int64(mon.PredictionCount()), mon.PSI(), int64(mon.AlarmCount()), engine.MemoryStats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.sb.String())
}

// Stats snapshots the heartbeat telemetry.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	mon, engine := n.monitor, n.engine
	n.mu.Unlock()
	if mon == nil {
		return NodeStats{}
	}
	st := NodeStats{
		Events: int64(mon.EventCount(trace.TypeCE) + mon.EventCount(trace.TypeUE) +
			mon.EventCount(trace.TypeStorm)),
		Predictions: int64(mon.PredictionCount()),
		Alarms:      int64(mon.AlarmCount()),
		ScoreBins:   mon.ScoreBins(),
	}
	if engine != nil {
		ms := engine.MemoryStats()
		st.ResidentBytes = ms.ResidentBytes
		st.Evictions = ms.Evictions
		st.Rehydrations = ms.Rehydrations
		st.Compactions = ms.Compactions
		st.CompactedEvents = ms.CompactedEvents
		st.SpilledBytes = ms.SpilledBytes
		st.Spills = ms.Spills
	}
	return st
}

// Dashboard renders the node monitor's text summary.
func (n *Node) Dashboard() string {
	n.mu.Lock()
	mon := n.monitor
	n.mu.Unlock()
	if mon == nil {
		return "(not joined)\n"
	}
	return mon.Dashboard()
}

// Run serves the node's HTTP surface on addr, joins the control plane
// (retrying until it answers), and heartbeats every interval — pulling a
// newly promoted artifact whenever the heartbeat reports a version bump.
// Run blocks until ctx is canceled, then shuts the listener down
// gracefully and returns nil.
func (n *Node) Run(ctx context.Context, addr string, interval time.Duration) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	selfURL := "http://" + ln.Addr().String()
	srv := &http.Server{Handler: n.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Join, retrying while the control plane comes up.
	for {
		if err := n.JoinOnce(selfURL); err == nil {
			break
		}
		select {
		case <-ctx.Done():
			srv.Shutdown(context.Background())
			return nil
		case <-time.After(250 * time.Millisecond):
		}
	}

	beat := time.NewTicker(interval)
	defer beat.Stop()
	for {
		select {
		case <-ctx.Done():
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(shCtx)
			return nil
		case err := <-serveErr:
			if err != nil && err != http.ErrServerClosed {
				return err
			}
			return nil
		case <-beat.C:
			resp, err := n.client.Heartbeat(HeartbeatRequest{Name: n.Name, Stats: n.Stats()})
			if err != nil {
				continue // control plane restarting or unreachable; keep beating
			}
			if resp.Version > 0 {
				n.ensureVersion(resp.Version)
			}
		}
	}
}
