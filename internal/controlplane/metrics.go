package controlplane

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"memfp/internal/mlops"
	"memfp/internal/trace"
)

// Hand-rolled Prometheus text exposition (format 0.0.4) — the repo is
// stdlib-only, and the format is simple enough that a writer beats a
// dependency.

type promWriter struct{ sb strings.Builder }

// family emits the # HELP / # TYPE preamble for a metric family. Callers
// group all samples of a family immediately after its preamble.
func (p *promWriter) family(name, typ, help string) {
	fmt.Fprintf(&p.sb, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&p.sb, "# TYPE %s %s\n", name, typ)
}

// sample emits one sample line. Labels are ordered pairs.
func (p *promWriter) sample(name string, labels [][2]string, v float64) {
	p.sb.WriteString(name)
	if len(labels) > 0 {
		p.sb.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				p.sb.WriteByte(',')
			}
			fmt.Fprintf(&p.sb, "%s=%q", kv[0], escapeLabel(kv[1]))
		}
		p.sb.WriteByte('}')
	}
	p.sb.WriteByte(' ')
	p.sb.WriteString(promVal(v))
	p.sb.WriteByte('\n')
}

// escapeLabel applies the exposition format's label-value escapes. %q in
// sample adds the surrounding quotes and escapes \ and " already, so only
// newlines need mapping to the two-character sequence.
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promVal renders a sample value: shortest float representation, with
// the spec's spellings for the non-finite values.
func promVal(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeCommonMetrics emits the monitor-backed families shared by the
// control plane and the node daemons: ingest counters, predictions and
// score drift, alarm-outcome feedback, serving-memory telemetry, and the
// per-shard queue/latency series. predictions, psi and alarms are passed
// in because the control plane aggregates them across nodes before the
// write.
func writeCommonMetrics(p *promWriter, mon *mlops.Monitor, predictions int64, psi float64, alarms int64, ms mlops.MemoryStats) {
	p.family("memfp_events_ingested_total", "counter", "Memory events ingested, by event type.")
	for _, t := range []trace.EventType{trace.TypeCE, trace.TypeUE, trace.TypeStorm} {
		p.sample("memfp_events_ingested_total", [][2]string{{"type", t.String()}}, float64(mon.EventCount(t)))
	}

	p.family("memfp_predictions_total", "counter", "Model invocations across the fleet.")
	p.sample("memfp_predictions_total", nil, float64(predictions))

	p.family("memfp_alarms_total", "counter", "Alarms emitted on the merged stream.")
	p.sample("memfp_alarms_total", nil, float64(alarms))

	p.family("memfp_drift_psi", "gauge", "Population stability index of live scores vs the training reference.")
	p.sample("memfp_drift_psi", nil, psi)

	tp, fp, fn := mon.FeedbackCounts()
	p.family("memfp_feedback_total", "counter", "Resolved alarm outcomes, by outcome.")
	p.sample("memfp_feedback_total", [][2]string{{"outcome", "tp"}}, float64(tp))
	p.sample("memfp_feedback_total", [][2]string{{"outcome", "fp"}}, float64(fp))
	p.sample("memfp_feedback_total", [][2]string{{"outcome", "fn"}}, float64(fn))

	prec, rec := mon.LivePrecisionRecall()
	p.family("memfp_live_precision", "gauge", "Feedback-derived live precision.")
	p.sample("memfp_live_precision", nil, prec)
	p.family("memfp_live_recall", "gauge", "Feedback-derived live recall.")
	p.sample("memfp_live_recall", nil, rec)

	p.family("memfp_memory_resident_bytes", "gauge", "Resident serving-state footprint.")
	p.sample("memfp_memory_resident_bytes", nil, float64(ms.ResidentBytes))
	p.family("memfp_memory_evictions_total", "counter", "Idle-DIMM serving-state evictions.")
	p.sample("memfp_memory_evictions_total", nil, float64(ms.Evictions))
	p.family("memfp_memory_rehydrations_total", "counter", "Frozen-DIMM serving-state rehydrations.")
	p.sample("memfp_memory_rehydrations_total", nil, float64(ms.Rehydrations))
	p.family("memfp_memory_compactions_total", "counter", "Serving-log compactions.")
	p.sample("memfp_memory_compactions_total", nil, float64(ms.Compactions))
	p.family("memfp_memory_compacted_events_total", "counter", "Events dropped by serving-log compaction.")
	p.sample("memfp_memory_compacted_events_total", nil, float64(ms.CompactedEvents))
	p.family("memfp_memory_spilled_bytes", "gauge", "Frozen serving-state bytes resident in the spill store.")
	p.sample("memfp_memory_spilled_bytes", nil, float64(ms.SpilledBytes))
	p.family("memfp_memory_spills_total", "counter", "Frozen-DIMM records written to the spill store.")
	p.sample("memfp_memory_spills_total", nil, float64(ms.Spills))

	shards := mon.ShardStats()
	p.family("memfp_shard_queue_depth", "gauge", "Events queued on a serving shard at tick start.")
	for _, ss := range shards {
		p.sample("memfp_shard_queue_depth", [][2]string{{"shard", strconv.Itoa(ss.Shard)}}, float64(ss.QueueDepth))
	}
	p.family("memfp_shard_ingest_latency_seconds", "summary", "Serving-tick wall-clock latency per shard.")
	for _, ss := range shards {
		sh := strconv.Itoa(ss.Shard)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			p.sample("memfp_shard_ingest_latency_seconds",
				[][2]string{{"shard", sh}, {"quantile", promVal(q)}}, ss.Quantile(q))
		}
		p.sample("memfp_shard_ingest_latency_seconds_sum",
			[][2]string{{"shard", sh}}, ss.LatencySum.Seconds())
		p.sample("memfp_shard_ingest_latency_seconds_count",
			[][2]string{{"shard", sh}}, float64(ss.Ticks))
	}
}

// handleMetrics is the control plane's /metrics: the common monitor
// families with predictions, score bins and memory telemetry aggregated
// across node heartbeats, plus registry, journal and fleet state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mon := s.pipe.Monitor
	if mon == nil {
		http.Error(w, "no monitor configured", http.StatusServiceUnavailable)
		return
	}
	ms := s.MemoryStats() // before s.mu: takes the mutex itself

	type nodeSnap struct {
		name    string
		alive   bool
		beatAge float64
		stats   NodeStats
	}
	s.mu.Lock()
	ticks := s.ticks
	alarms := int64(len(s.alarms))
	pending := s.journalEnd() - s.nextEmit
	paused := s.paused
	joined := len(s.nodes)
	journal := s.journalInfoLocked()
	snaps := make([]nodeSnap, 0, joined)
	for _, n := range s.nodes {
		snaps = append(snaps, nodeSnap{n.name, n.alive, time.Since(n.lastBeat).Seconds(), n.stats})
	}
	s.mu.Unlock()
	if s.engine != nil {
		pending = s.engine.HeldEvents()
		paused = s.engine.Paused()
	}

	preds := int64(mon.PredictionCount())
	bins := mon.ScoreBins()
	for _, n := range snaps {
		preds += n.stats.Predictions
		for i := range bins {
			bins[i] += n.stats.ScoreBins[i]
		}
	}
	psi := mon.PSIOf(bins)

	p := &promWriter{}
	writeCommonMetrics(p, mon, preds, psi, alarms, ms)

	p.family("memfp_registry_epoch", "counter", "Model-registry promotion epoch.")
	p.sample("memfp_registry_epoch", nil, float64(s.pipe.Registry.Epoch()))

	prodByName := map[string]int{}
	latestByName := map[string]int{}
	for _, v := range s.pipe.Registry.List() {
		if v.Stage == mlops.StageProduction {
			prodByName[v.Name] = v.Version
		}
		if v.Version > latestByName[v.Name] {
			latestByName[v.Name] = v.Version
		}
	}
	p.family("memfp_model_production_version", "gauge", "Registry version currently serving, per model.")
	for name, v := range prodByName {
		p.sample("memfp_model_production_version", [][2]string{{"model", name}}, float64(v))
	}
	p.family("memfp_model_latest_version", "gauge", "Newest registry version, per model.")
	for name, v := range latestByName {
		p.sample("memfp_model_latest_version", [][2]string{{"model", name}}, float64(v))
	}

	p.family("memfp_ticks_total", "counter", "Ingest ticks accepted.")
	p.sample("memfp_ticks_total", nil, float64(ticks))
	p.family("memfp_ticks_pending", "gauge", "Accepted work not yet emitted (journaled ticks or held events).")
	p.sample("memfp_ticks_pending", nil, float64(pending))
	p.family("memfp_paused", "gauge", "1 while serving is inside a maintenance window.")
	p.sample("memfp_paused", nil, b2f(paused))

	// Journal lifecycle (always emitted; flat zeros in local mode, where
	// no tick journal exists).
	p.family("memfp_journal_depth", "gauge", "Journaled ticks resident in control-plane memory.")
	p.sample("memfp_journal_depth", nil, float64(journal.Depth))
	p.family("memfp_journal_depth_highwater", "gauge", "Peak resident journal depth.")
	p.sample("memfp_journal_depth_highwater", nil, float64(journal.DepthHighWater))
	p.family("memfp_journal_truncations_total", "counter", "Journal truncation passes.")
	p.sample("memfp_journal_truncations_total", nil, float64(journal.Truncations))
	p.family("memfp_journal_truncated_ticks_total", "counter", "Ticks truncated out of the in-memory journal.")
	p.sample("memfp_journal_truncated_ticks_total", nil, float64(journal.TruncatedTicks))
	p.family("memfp_spill_bytes_total", "counter", "Checkpoint and journal-segment bytes written to the spill store.")
	p.sample("memfp_spill_bytes_total", nil, float64(journal.SpillBytes))

	p.family("memfp_nodes_expected", "gauge", "Node daemons the fleet is partitioned across.")
	p.sample("memfp_nodes_expected", nil, float64(s.cfg.ExpectNodes))
	p.family("memfp_nodes_joined", "gauge", "Node daemons currently registered.")
	p.sample("memfp_nodes_joined", nil, float64(joined))

	if len(snaps) > 0 {
		p.family("memfp_node_up", "gauge", "1 while the node's last forward/heartbeat succeeded.")
		for _, n := range snaps {
			p.sample("memfp_node_up", [][2]string{{"node", n.name}}, b2f(n.alive))
		}
		p.family("memfp_node_heartbeat_age_seconds", "gauge", "Seconds since the node's last heartbeat.")
		for _, n := range snaps {
			p.sample("memfp_node_heartbeat_age_seconds", [][2]string{{"node", n.name}}, n.beatAge)
		}
		p.family("memfp_node_events_total", "counter", "Events ingested by each node engine.")
		for _, n := range snaps {
			p.sample("memfp_node_events_total", [][2]string{{"node", n.name}}, float64(n.stats.Events))
		}
		p.family("memfp_node_predictions_total", "counter", "Model invocations on each node.")
		for _, n := range snaps {
			p.sample("memfp_node_predictions_total", [][2]string{{"node", n.name}}, float64(n.stats.Predictions))
		}
		p.family("memfp_node_alarms_total", "counter", "Alarms raised by each node engine.")
		for _, n := range snaps {
			p.sample("memfp_node_alarms_total", [][2]string{{"node", n.name}}, float64(n.stats.Alarms))
		}
		p.family("memfp_node_resident_bytes", "gauge", "Resident serving-state footprint per node.")
		for _, n := range snaps {
			p.sample("memfp_node_resident_bytes", [][2]string{{"node", n.name}}, float64(n.stats.ResidentBytes))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.sb.String())
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
