package controlplane

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"memfp/internal/platform"
	"memfp/internal/trace"
)

// routes wires the HTTP API. Method-qualified patterns give wrong-method
// requests an automatic 405.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/v1/status", s.handleStatus)
	mux.HandleFunc("POST /api/v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /api/v1/flush", s.handleFlush)
	mux.HandleFunc("GET /api/v1/alarms", s.handleAlarms)
	mux.HandleFunc("GET /api/v1/models", s.handleModels)
	mux.HandleFunc("POST /api/v1/models/promote", s.handlePromote)
	mux.HandleFunc("POST /api/v1/models/rollback", s.handleRollback)
	mux.HandleFunc("GET /api/v1/models/artifact", s.handleArtifact)
	mux.HandleFunc("POST /api/v1/pause", s.handlePause)
	mux.HandleFunc("POST /api/v1/resume", s.handleResume)
	mux.HandleFunc("POST /api/v1/nodes/join", s.handleJoin)
	mux.HandleFunc("POST /api/v1/nodes/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("GET /api/v1/nodes/checkpoint", s.handleCheckpointBlob)
	s.mux = mux
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.status())
}

// handleIngest accepts one tick of events — BMC text log lines, or one
// MFE1 binary frame when the request Content-Type is the events type —
// auto-registering DIMMs from the part numbers carried by either codec.
// An Accept of the alarms content type returns the tick's alarms as a
// binary MFA1 page (Pending rides the X-Memfp-Pending header) instead of
// JSON.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var (
		events []trace.Event
		parts  []string
	)
	if r.Header.Get("Content-Type") == ContentTypeEvents {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		events, parts, err = trace.DecodeEventFrame(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		for i, e := range events {
			s.mu.Lock()
			_, known := s.parts[e.DIMM]
			s.mu.Unlock()
			if !known {
				part, err := platform.PartByNumber(parts[i])
				if err != nil {
					httpError(w, http.StatusBadRequest, "event %d: %v", i, err)
					return
				}
				s.RegisterDIMM(e.DIMM, part)
			}
		}
	} else {
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			e, pn, err := trace.DecodeEvent(line)
			if err != nil {
				httpError(w, http.StatusBadRequest, "line %d: %v", lineNo, err)
				return
			}
			s.mu.Lock()
			_, known := s.parts[e.DIMM]
			s.mu.Unlock()
			if !known {
				part, err := platform.PartByNumber(pn)
				if err != nil {
					httpError(w, http.StatusBadRequest, "line %d: %v", lineNo, err)
					return
				}
				s.RegisterDIMM(e.DIMM, part)
			}
			events = append(events, e)
		}
		if err := sc.Err(); err != nil {
			httpError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
	}
	res, err := s.IngestTick(events)
	if err != nil {
		code := http.StatusInternalServerError
		if err == ErrNotReady {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	if r.Header.Get("Accept") == ContentTypeAlarms {
		buf := getWireBuf()
		defer putWireBuf(buf)
		*buf = AppendAlarmFrame((*buf)[:0], res.Alarms)
		w.Header().Set("Content-Type", ContentTypeAlarms)
		w.Header().Set(HeaderPending, strconv.Itoa(res.Pending))
		w.Write(*buf)
		return
	}
	writeJSON(w, http.StatusOK, TickResponse{Alarms: toWireSlice(res.Alarms), Pending: res.Pending})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	res, err := s.Flush()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, TickResponse{Alarms: toWireSlice(res.Alarms), Pending: res.Pending})
}

func (s *Server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad since cursor %q", v)
			return
		}
		since = n
	}
	alarms, next := s.AlarmsSince(since)
	if r.Header.Get("Accept") == ContentTypeAlarms {
		buf := getWireBuf()
		defer putWireBuf(buf)
		*buf = AppendAlarmFrame((*buf)[:0], alarms)
		w.Header().Set("Content-Type", ContentTypeAlarms)
		w.Header().Set(HeaderNext, strconv.Itoa(next))
		w.Write(*buf)
		return
	}
	writeJSON(w, http.StatusOK, AlarmsResponse{Alarms: toWireSlice(alarms), Next: next})
}

// handleCheckpointBlob serves a rejoining node's stored engine snapshot.
func (s *Server) handleCheckpointBlob(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		httpError(w, http.StatusBadRequest, "checkpoint requires ?name=")
		return
	}
	blob, err := s.checkpointBlob(name)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", ContentTypeSnapshot)
	w.Write(blob)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	var out []ModelInfo
	for _, v := range s.pipe.Registry.List() {
		out = append(out, ModelInfo{
			Name: v.Name, Version: v.Version,
			Platform: string(v.Platform), Algorithm: v.Algorithm,
			Stage: string(v.Stage), Threshold: v.Threshold,
			F1: v.Metrics.F1, Precision: v.Metrics.Precision, Recall: v.Metrics.Recall,
			Artifact: len(v.Artifact),
		})
	}
	writeJSON(w, http.StatusOK, map[string][]ModelInfo{"models": out})
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req PromoteRequest
	if err := readJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Name == "" {
		req.Name = s.pipe.ModelName
	}
	if err := s.pipe.Registry.Promote(req.Name, req.Version); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EpochResponse{Epoch: s.pipe.Registry.Epoch(), Version: req.Version})
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	var req RollbackRequest
	if err := readJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Name == "" {
		req.Name = s.pipe.ModelName
	}
	v, err := s.pipe.Registry.Rollback(req.Name)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EpochResponse{Epoch: s.pipe.Registry.Epoch(), Version: v.Version})
}

// handleArtifact serves a model version's serialized envelope. A
// version-pinned request (?version=N) is immutable and carries a stable
// ETag; a production request is cache-busted by the promotion epoch, so
// nodes polling with If-None-Match pull exactly when a promotion lands.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = s.pipe.ModelName
	}
	var (
		etag string
		verQ = r.URL.Query().Get("version")
	)
	var mv *modelVersionRef
	if verQ != "" {
		vn, err := strconv.Atoi(verQ)
		if err != nil || vn <= 0 {
			httpError(w, http.StatusBadRequest, "bad version %q", verQ)
			return
		}
		for _, v := range s.pipe.Registry.List() {
			if v.Name == name && v.Version == vn {
				mv = &modelVersionRef{v.Version, v.Algorithm, string(v.Platform), v.Threshold, v.Artifact}
				break
			}
		}
		if mv == nil {
			httpError(w, http.StatusNotFound, "model %s v%s not found", name, verQ)
			return
		}
		etag = fmt.Sprintf("%q", fmt.Sprintf("%s-v%d", name, mv.version))
	} else {
		epoch := s.pipe.Registry.Epoch()
		v, err := s.pipe.Registry.Production(name)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		mv = &modelVersionRef{v.Version, v.Algorithm, string(v.Platform), v.Threshold, v.Artifact}
		etag = fmt.Sprintf("%q", fmt.Sprintf("%s-v%d-e%d", name, mv.version, epoch))
	}
	if len(mv.artifact) == 0 {
		httpError(w, http.StatusNotFound, "model %s v%d has no serialized artifact (closure-backed)", name, mv.version)
		return
	}
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderModelName, name)
	w.Header().Set(HeaderModelVersion, strconv.Itoa(mv.version))
	w.Header().Set(HeaderAlgorithm, mv.algorithm)
	w.Header().Set(HeaderPlatform, mv.platform)
	w.Header().Set(HeaderThreshold, strconv.FormatFloat(mv.threshold, 'x', -1, 64))
	w.Header().Set(HeaderEpoch, strconv.FormatUint(s.pipe.Registry.Epoch(), 10))
	w.Write(mv.artifact)
}

// modelVersionRef is the artifact handler's view of one version.
type modelVersionRef struct {
	version   int
	algorithm string
	platform  string
	threshold float64
	artifact  []byte
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	s.Pause()
	writeJSON(w, http.StatusOK, map[string]bool{"paused": true})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	res, err := s.Resume()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, TickResponse{Alarms: toWireSlice(res.Alarms), Pending: res.Pending})
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := readJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, code, err := s.join(req)
	if err != nil {
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := readJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, code, err := s.heartbeat(req)
	if err != nil {
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
