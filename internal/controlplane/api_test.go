package controlplane

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"memfp/internal/eval"
	"memfp/internal/mlops"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

// newLocalCP builds a local-mode control plane over an always-firing
// closure model, served through a real HTTP listener.
func newLocalCP(t *testing.T) (*Server, *Client, *httptest.Server) {
	t.Helper()
	cp, err := New(Config{Pipeline: closurePipeline(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cp.Handler())
	t.Cleanup(ts.Close)
	return cp, NewClient(ts.URL), ts
}

func TestAPIHealthStatusAndMethods(t *testing.T) {
	_, cl, ts := newLocalCP(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", resp.StatusCode)
	}

	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "local" || st.Platform != string(platform.Purley) || st.Epoch == 0 {
		t.Errorf("status = %+v, want local-mode Purley with promoted epoch", st)
	}

	// Method patterns give automatic 405s.
	resp, err = http.Post(ts.URL+"/api/v1/status", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/v1/status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/api/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/v1/ingest = %d, want 405", resp.StatusCode)
	}
}

func TestAPIIngestAndAlarms(t *testing.T) {
	f := fleet(t)
	_, cl, _ := newLocalCP(t)

	n := min(3000, len(f.all))
	var total []AlarmJSON
	for lo := 0; lo < n; lo += 1000 {
		tr, err := cl.IngestLines(encodeLines(f, lo, min(lo+1000, n)))
		if err != nil {
			t.Fatal(err)
		}
		total = append(total, tr.Alarms...)
	}
	if len(total) == 0 {
		t.Fatal("always-fire model raised no alarms over the ingested stream")
	}

	ar, err := cl.Alarms(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Alarms) != len(total) || ar.Next != len(total) {
		t.Errorf("alarms since 0: %d next=%d, want %d", len(ar.Alarms), ar.Next, len(total))
	}
	// Paging from a mid-stream cursor.
	ar2, err := cl.Alarms(ar.Next - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar2.Alarms) != 1 {
		t.Errorf("alarms since next-1: %d, want 1", len(ar2.Alarms))
	}
	// Over-range cursors clamp, negative ones are rejected.
	if ar3, err := cl.Alarms(1 << 20); err != nil || len(ar3.Alarms) != 0 {
		t.Errorf("over-range cursor: %v, %d alarms", err, len(ar3.Alarms))
	}
	if _, err := cl.Alarms(-1); err == nil || !strings.Contains(err.Error(), "cursor") {
		t.Errorf("negative cursor accepted: %v", err)
	}

	// Malformed line and unknown part number are 400s naming the line.
	if _, err := cl.IngestLines("BOGUS line\n"); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("malformed line: %v", err)
	}
	good := strings.SplitN(encodeLines(f, 0, 1), "\n", 2)[0]
	fields := strings.Fields(good)
	fields[6] = "NOT-A-PART"
	if _, err := cl.IngestLines(strings.Join(fields, " ") + "\n"); err == nil ||
		!strings.Contains(err.Error(), "line 1") {
		t.Errorf("unknown part number: %v", err)
	}
}

func TestAPIModelLifecycle(t *testing.T) {
	cp, cl, _ := newLocalCP(t)
	pipe := cp.Pipeline()

	models, err := cl.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Stage != string(mlops.StageProduction) || models[0].Artifact != 0 {
		t.Fatalf("models = %+v, want one production closure version", models)
	}

	if _, err := cl.Promote("", 99); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("promote unknown version: %v", err)
	}
	if _, err := cl.Rollback(""); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("rollback with no archived version: %v", err)
	}

	pipe.Registry.RegisterScorer(pipe.ModelName, platform.Purley, "always-quiet",
		mlops.ScorerFunc(func([]float64) float64 { return 0 }), eval.Metrics{F1: 1}, 0.5)
	before := pipe.Registry.Epoch()
	er, err := cl.Promote("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if er.Version != 2 || er.Epoch <= before {
		t.Errorf("promote v2 = %+v (epoch before %d)", er, before)
	}
	er, err = cl.Rollback("")
	if err != nil {
		t.Fatal(err)
	}
	if er.Version != 1 {
		t.Errorf("rollback restored v%d, want v1", er.Version)
	}
}

func TestAPIArtifact(t *testing.T) {
	f := fleet(t)
	cp, err := New(Config{Pipeline: mirror(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cp.Handler())
	t.Cleanup(ts.Close)
	cl := NewClient(ts.URL)
	name := cp.Pipeline().ModelName

	// Production pull: bytes + metadata headers, exact hex threshold.
	art, err := cl.Artifact("", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if art.Name != name || art.Version != 1 || string(art.Data) != string(f.artifact) {
		t.Fatalf("production artifact = %s v%d (%d bytes)", art.Name, art.Version, len(art.Data))
	}
	if art.Threshold != f.threshold {
		t.Errorf("threshold %v does not round-trip exactly (want %v)", art.Threshold, f.threshold)
	}
	if !strings.Contains(art.ETag, "-e") {
		t.Errorf("production ETag %q is not epoch-cache-busted", art.ETag)
	}

	// Conditional pull: unchanged epoch is a 304, a promotion busts it.
	again, err := cl.Artifact("", 0, art.ETag)
	if err != nil {
		t.Fatal(err)
	}
	if !again.NotModified {
		t.Error("If-None-Match with current ETag did not 304")
	}
	if _, err := cl.Promote(name, 2); err != nil {
		t.Fatal(err)
	}
	fresh, err := cl.Artifact("", 0, art.ETag)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.NotModified || fresh.Version != 2 || fresh.Threshold != f.threshold/2 {
		t.Errorf("post-promotion pull = v%d threshold=%v notModified=%v",
			fresh.Version, fresh.Threshold, fresh.NotModified)
	}

	// Version-pinned pull is immutable: same ETag across epochs, 304s.
	pin, err := cl.Artifact(name, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if pin.Version != 1 || strings.Contains(pin.ETag, "-e") {
		t.Errorf("pinned pull = v%d etag=%q", pin.Version, pin.ETag)
	}
	if p2, err := cl.Artifact(name, 1, pin.ETag); err != nil || !p2.NotModified {
		t.Errorf("pinned If-None-Match: %+v, %v", p2, err)
	}

	// Error paths: unknown version/name, malformed version, no envelope.
	if _, err := cl.Artifact(name, 7, ""); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown version: %v", err)
	}
	if _, err := cl.Artifact("nope", 1, ""); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown model: %v", err)
	}
	resp, err := http.Get(ts.URL + "/api/v1/models/artifact?version=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed version = %d, want 400", resp.StatusCode)
	}
	_, cloCl, _ := newLocalCP(t)
	if _, err := cloCl.Artifact("", 0, ""); err == nil || !strings.Contains(err.Error(), "artifact") {
		t.Errorf("closure production should 404 on artifact pull: %v", err)
	}
}

func TestAPIPauseResume(t *testing.T) {
	f := fleet(t)
	_, cl, _ := newLocalCP(t)

	if err := cl.Pause(); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Paused {
		t.Fatal("status not paused after pause")
	}
	n := min(2000, len(f.all))
	tr, err := cl.IngestLines(encodeLines(f, 0, n))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Alarms) != 0 || tr.Pending != n {
		t.Fatalf("paused ingest served: %d alarms, %d pending (want 0, %d)", len(tr.Alarms), tr.Pending, n)
	}
	res, err := cl.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pending != 0 || len(res.Alarms) == 0 {
		t.Errorf("resume drained %d alarms with %d pending, want >0 and 0", len(res.Alarms), res.Pending)
	}
}

func TestAPIDistributedGating(t *testing.T) {
	f := fleet(t)

	// Local mode refuses joins with a hint, and unknown heartbeats 404.
	_, cl, _ := newLocalCP(t)
	if _, err := cl.Join(JoinRequest{Name: "n1", Addr: "http://x"}); err == nil ||
		!strings.Contains(err.Error(), "-nodes") {
		t.Errorf("local-mode join: %v", err)
	}
	if _, err := cl.Heartbeat(HeartbeatRequest{Name: "ghost"}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("unknown heartbeat: %v", err)
	}

	// Distributed mode refuses ingest until the fleet is complete.
	cp, err := New(Config{Pipeline: closurePipeline(t), ExpectNodes: 1, Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cp.Handler())
	t.Cleanup(ts.Close)
	dcl := NewClient(ts.URL)
	if _, err := dcl.IngestLines(encodeLines(f, 0, 1)); err == nil ||
		!strings.Contains(err.Error(), strconv.Itoa(http.StatusServiceUnavailable)) {
		t.Errorf("ingest before join: %v", err)
	}
	if _, err := dcl.Join(JoinRequest{Name: "", Addr: "http://x"}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Errorf("nameless join: %v", err)
	}
	jr, err := dcl.Join(JoinRequest{Name: "n1", Addr: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if jr.SlotFrom != 0 || jr.SlotTo != 8 || jr.Nodes != 1 || jr.Version != 1 {
		t.Errorf("join assignment = %+v", jr)
	}
	if jr.PredictEvery != 5 || !jr.MicroBatch {
		t.Errorf("join serving params = %+v, want engine defaults", jr)
	}
	if _, err := dcl.Join(JoinRequest{Name: "n2", Addr: "http://x"}); err == nil ||
		!strings.Contains(err.Error(), "409") {
		t.Errorf("join past fleet size: %v", err)
	}
	if hr, err := dcl.Heartbeat(HeartbeatRequest{Name: "n1"}); err != nil || hr.Version != 1 {
		t.Errorf("heartbeat = %+v, %v", hr, err)
	}
}

// TestAPIBinaryIngest drives the same fleet prefix through two identical
// local control planes — one over BMC text lines, one over MFE1 binary
// frames with binary MFA1 alarm responses — and requires identical alarm
// streams and pending counts from both wires.
func TestAPIBinaryIngest(t *testing.T) {
	f := fleet(t)
	n := min(2000, len(f.all))

	_, textCl, _ := newLocalCP(t)
	_, binCl, _ := newLocalCP(t)
	for lo := 0; lo < n; lo += 500 {
		hi := min(lo+500, n)
		tr, err := textCl.IngestLines(encodeLines(f, lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		frame := trace.AppendEventFrame(nil, f.all[lo:hi], func(id trace.DIMMID) string {
			return f.parts[id].PartNumber
		})
		br, err := binCl.IngestFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if br.Pending != tr.Pending {
			t.Fatalf("tick %d: binary pending %d, text pending %d", lo/500, br.Pending, tr.Pending)
		}
		var ta, ba []mlops.Alarm
		for _, a := range tr.Alarms {
			ta = append(ta, fromWire(a))
		}
		for _, a := range br.Alarms {
			ba = append(ba, fromWire(a))
		}
		if got, want := renderAlarms(ba), renderAlarms(ta); got != want {
			t.Fatalf("tick %d: binary wire alarms diverge from text wire:\n%s", lo/500, firstDiff(got, want))
		}
	}

	// Binary alarm paging agrees with the JSON page.
	req, err := http.NewRequest(http.MethodGet, binCl.Base()+"/api/v1/alarms?since=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeAlarms)
	resp, err := binCl.HTTP.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("binary alarms page: %d, %v", resp.StatusCode, err)
	}
	if resp.Header.Get("Content-Type") != ContentTypeAlarms {
		t.Errorf("binary alarms content type %q", resp.Header.Get("Content-Type"))
	}
	binPage, err := DecodeAlarmFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	jsonPage, err := binCl.Alarms(0)
	if err != nil {
		t.Fatal(err)
	}
	if next, _ := strconv.Atoi(resp.Header.Get(HeaderNext)); next != jsonPage.Next {
		t.Errorf("binary page next cursor %d, JSON %d", next, jsonPage.Next)
	}
	var jp []mlops.Alarm
	for _, a := range jsonPage.Alarms {
		jp = append(jp, fromWire(a))
	}
	if got, want := renderAlarms(binPage), renderAlarms(jp); got != want {
		t.Errorf("binary alarm page diverges from JSON page:\n%s", firstDiff(got, want))
	}
}
