package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client speaks the control-plane HTTP API. Node daemons use it to join,
// heartbeat and pull artifacts; memfp ctl uses it for operator commands.
type Client struct {
	base string
	HTTP *http.Client
}

// NewClient wraps a control-plane base URL (e.g. http://127.0.0.1:9090).
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// Base returns the wrapped base URL.
func (c *Client) Base() string { return c.base }

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s", resp.Status)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) get(path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) post(path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.do(req, out)
}

// Status fetches the control-plane summary.
func (c *Client) Status() (StatusResponse, error) {
	var st StatusResponse
	err := c.get("/api/v1/status", &st)
	return st, err
}

// IngestLines posts one tick of BMC text log lines.
func (c *Client) IngestLines(text string) (TickResponse, error) {
	req, err := http.NewRequest(http.MethodPost, c.base+"/api/v1/ingest", strings.NewReader(text))
	if err != nil {
		return TickResponse{}, err
	}
	req.Header.Set("Content-Type", "text/plain")
	var tr TickResponse
	err = c.do(req, &tr)
	return tr, err
}

// IngestFrame posts one tick as a pre-encoded MFE1 binary event frame
// and requests the alarms back as a binary MFA1 page — the fast path for
// high-volume feeders.
func (c *Client) IngestFrame(frame []byte) (TickResponse, error) {
	req, err := http.NewRequest(http.MethodPost, c.base+"/api/v1/ingest", bytes.NewReader(frame))
	if err != nil {
		return TickResponse{}, err
	}
	req.Header.Set("Content-Type", ContentTypeEvents)
	req.Header.Set("Accept", ContentTypeAlarms)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return TickResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e) == nil && e.Error != "" {
			return TickResponse{}, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return TickResponse{}, fmt.Errorf("%s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return TickResponse{}, err
	}
	alarms, err := DecodeAlarmFrame(body)
	if err != nil {
		return TickResponse{}, err
	}
	var tr TickResponse
	tr.Alarms = toWireSlice(alarms)
	tr.Pending, _ = strconv.Atoi(resp.Header.Get(HeaderPending))
	return tr, nil
}

// NodeCheckpoint pulls a node's stored engine snapshot for a rejoin
// restore.
func (c *Client) NodeCheckpoint(name string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/api/v1/nodes/checkpoint?name="+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e) == nil && e.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("%s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Flush re-drives delivery of pending work.
func (c *Client) Flush() (TickResponse, error) {
	var tr TickResponse
	err := c.post("/api/v1/flush", nil, &tr)
	return tr, err
}

// Alarms pages the emitted alarm stream from a cursor.
func (c *Client) Alarms(since int) (AlarmsResponse, error) {
	var ar AlarmsResponse
	err := c.get("/api/v1/alarms?since="+strconv.Itoa(since), &ar)
	return ar, err
}

// Models lists every registry version.
func (c *Client) Models() ([]ModelInfo, error) {
	var out struct {
		Models []ModelInfo `json:"models"`
	}
	err := c.get("/api/v1/models", &out)
	return out.Models, err
}

// Promote moves a staged version to production.
func (c *Client) Promote(name string, version int) (EpochResponse, error) {
	var er EpochResponse
	err := c.post("/api/v1/models/promote", PromoteRequest{Name: name, Version: version}, &er)
	return er, err
}

// Rollback restores the previously archived production version.
func (c *Client) Rollback(name string) (EpochResponse, error) {
	var er EpochResponse
	err := c.post("/api/v1/models/rollback", RollbackRequest{Name: name}, &er)
	return er, err
}

// Pause opens a maintenance window.
func (c *Client) Pause() error { return c.post("/api/v1/pause", nil, nil) }

// Resume closes it and drains held work.
func (c *Client) Resume() (TickResponse, error) {
	var tr TickResponse
	err := c.post("/api/v1/resume", nil, &tr)
	return tr, err
}

// Join registers a node daemon.
func (c *Client) Join(req JoinRequest) (JoinResponse, error) {
	var jr JoinResponse
	err := c.post("/api/v1/nodes/join", req, &jr)
	return jr, err
}

// Heartbeat refreshes a node's liveness and telemetry.
func (c *Client) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	var hr HeartbeatResponse
	err := c.post("/api/v1/nodes/heartbeat", req, &hr)
	return hr, err
}

// Artifact is a pulled model envelope plus its registry metadata.
type Artifact struct {
	Name        string
	Version     int
	Algorithm   string
	Platform    string
	Threshold   float64
	ETag        string
	Data        []byte
	NotModified bool
}

// Artifact pulls a model envelope. version 0 requests the production
// version (epoch-cache-busted ETag); a non-empty etag is sent as
// If-None-Match, and a 304 returns NotModified with no body.
func (c *Client) Artifact(name string, version int, etag string) (Artifact, error) {
	u := c.base + "/api/v1/models/artifact"
	var params []string
	if name != "" {
		params = append(params, "name="+name)
	}
	if version > 0 {
		params = append(params, "version="+strconv.Itoa(version))
	}
	if len(params) > 0 {
		u += "?" + strings.Join(params, "&")
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return Artifact{}, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return Artifact{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		return Artifact{ETag: etag, NotModified: true}, nil
	}
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e) == nil && e.Error != "" {
			return Artifact{}, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return Artifact{}, fmt.Errorf("%s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return Artifact{}, err
	}
	a := Artifact{
		Name:      resp.Header.Get(HeaderModelName),
		Algorithm: resp.Header.Get(HeaderAlgorithm),
		Platform:  resp.Header.Get(HeaderPlatform),
		ETag:      resp.Header.Get("ETag"),
		Data:      data,
	}
	a.Version, _ = strconv.Atoi(resp.Header.Get(HeaderModelVersion))
	if th := resp.Header.Get(HeaderThreshold); th != "" {
		v, err := strconv.ParseFloat(th, 64)
		if err != nil {
			return Artifact{}, fmt.Errorf("bad threshold header %q: %w", th, err)
		}
		a.Threshold = v
	}
	return a, nil
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics() (string, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return string(b), nil
}
