package controlplane

import (
	"encoding/json"
	"fmt"
	"net/http"

	"memfp/internal/mlops"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

// Wire types of the control-plane HTTP API (JSON bodies). Event batches
// travel as BMC text log lines (trace.EncodeEvent) or as binary MFE1
// frames, alarms as JSON or binary MFA1 pages — negotiated per request
// by Content-Type/Accept (see wire.go). JSON alarm scores round-trip
// bit-exactly through encoding/json's shortest-representation float64
// codec and binary ones travel as raw IEEE-754 bits; thresholds ride
// hex-float headers — nothing on the wire can perturb the
// byte-identical alarm invariant.

// Forwarding headers (control plane → node, and artifact responses).
const (
	// HeaderModelVersion pins the registry model version a forwarded tick
	// must be served with: catch-up replay after a node rejoin re-serves
	// history under the historically-correct model, so throttle and
	// cooldown state rebuilds exactly.
	HeaderModelVersion = "X-Memfp-Model-Version"
	// HeaderTick carries the control plane's journal index for a
	// forwarded tick, making delivery idempotent: a node that already
	// served the tick replays its recorded response instead of
	// double-ingesting.
	HeaderTick = "X-Memfp-Tick"

	// Artifact response headers.
	HeaderModelName = "X-Memfp-Model-Name"
	HeaderAlgorithm = "X-Memfp-Algorithm"
	HeaderPlatform  = "X-Memfp-Platform"
	// HeaderThreshold is the version's decision threshold as a hex float
	// (strconv 'x' format) — exact, unlike any decimal rendering.
	HeaderThreshold = "X-Memfp-Threshold"
	HeaderEpoch     = "X-Memfp-Epoch"
)

// AlarmJSON is one alarm on the wire.
type AlarmJSON struct {
	Time     int64   `json:"time"`
	Platform string  `json:"platform"`
	Server   int     `json:"server"`
	Slot     int     `json:"slot"`
	Score    float64 `json:"score"`
	Model    string  `json:"model"`
}

func toWire(a mlops.Alarm) AlarmJSON {
	return AlarmJSON{
		Time:     int64(a.Time),
		Platform: string(a.DIMM.Platform),
		Server:   a.DIMM.Server,
		Slot:     a.DIMM.Slot,
		Score:    a.Score,
		Model:    a.Model,
	}
}

func fromWire(a AlarmJSON) mlops.Alarm {
	return mlops.Alarm{
		Time:  trace.Minutes(a.Time),
		DIMM:  trace.DIMMID{Platform: platform.ID(a.Platform), Server: a.Server, Slot: a.Slot},
		Score: a.Score,
		Model: a.Model,
	}
}

func toWireSlice(as []mlops.Alarm) []AlarmJSON {
	out := make([]AlarmJSON, len(as))
	for i, a := range as {
		out[i] = toWire(a)
	}
	return out
}

// TickResponse reports one ingest/flush/resume call's outcome.
type TickResponse struct {
	Alarms  []AlarmJSON `json:"alarms"`
	Pending int         `json:"pending"`
}

// AlarmsResponse is a page of the emitted alarm stream; Next is the
// cursor for the following poll.
type AlarmsResponse struct {
	Alarms []AlarmJSON `json:"alarms"`
	Next   int         `json:"next"`
}

// ModelInfo is one registry version's metadata.
type ModelInfo struct {
	Name      string  `json:"name"`
	Version   int     `json:"version"`
	Platform  string  `json:"platform"`
	Algorithm string  `json:"algorithm"`
	Stage     string  `json:"stage"`
	Threshold float64 `json:"threshold"`
	F1        float64 `json:"f1"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	Artifact  int     `json:"artifact_bytes"`
}

// PromoteRequest / RollbackRequest drive registry lifecycle changes.
type PromoteRequest struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
}

type RollbackRequest struct {
	Name string `json:"name"`
}

// EpochResponse reports the registry epoch after a lifecycle change.
type EpochResponse struct {
	Epoch   uint64 `json:"epoch"`
	Version int    `json:"version"` // production version now serving
}

// NodeStats is a node daemon's heartbeat telemetry.
type NodeStats struct {
	Events          int64     `json:"events"`
	Predictions     int64     `json:"predictions"`
	Alarms          int64     `json:"alarms"`
	ScoreBins       [10]int64 `json:"score_bins"`
	ResidentBytes   int64     `json:"resident_bytes"`
	Evictions       int64     `json:"evictions"`
	Rehydrations    int64     `json:"rehydrations"`
	Compactions     int64     `json:"compactions"`
	CompactedEvents int64     `json:"compacted_events"`
	SpilledBytes    int64     `json:"spilled_bytes"`
	Spills          int64     `json:"spills"`
}

// JoinRequest registers a node daemon (or re-registers one after a
// restart — same name, fresh serving state).
type JoinRequest struct {
	Name string `json:"name"`
	Addr string `json:"addr"` // node base URL the control plane forwards to
}

// JoinResponse is the node's assignment: its contiguous hash-slot range
// plus everything needed to build a serving engine identical to the
// single-process one.
type JoinResponse struct {
	Index        int    `json:"index"`
	Nodes        int    `json:"nodes"`
	Slots        int    `json:"slots"`
	SlotFrom     int    `json:"slot_from"`
	SlotTo       int    `json:"slot_to"` // exclusive
	Platform     string `json:"platform"`
	Model        string `json:"model"`
	PredictEvery int64  `json:"predict_every"` // minutes
	Cooldown     int64  `json:"cooldown"`      // minutes
	MicroBatch   bool   `json:"micro_batch"`
	MemoryBudget int64  `json:"memory_budget"`
	Epoch        uint64 `json:"epoch"`
	Version      int    `json:"version"` // current production version (0 = none yet)
	// CheckpointTick > 0 tells a rejoining node that a snapshot covering
	// ticks [0, CheckpointTick) is stored on the control plane; the node
	// restores it instead of replaying from zero.
	CheckpointTick int `json:"checkpoint_tick,omitempty"`
}

// HeartbeatRequest / HeartbeatResponse keep a node registered and tell
// it the current promotion epoch so it can pull new artifacts.
type HeartbeatRequest struct {
	Name  string    `json:"name"`
	Stats NodeStats `json:"stats"`
}

type HeartbeatResponse struct {
	Epoch   uint64 `json:"epoch"`
	Version int    `json:"version"`
}

// NodeInfo is one registered node in a status report.
type NodeInfo struct {
	Name       string    `json:"name"`
	Addr       string    `json:"addr"`
	Index      int       `json:"index"`
	SlotFrom   int       `json:"slot_from"`
	SlotTo     int       `json:"slot_to"`
	Alive      bool      `json:"alive"`
	BeatAgeSec float64   `json:"beat_age_sec"`
	SentTicks  int       `json:"sent_ticks"`
	Checkpoint int       `json:"checkpoint"` // ticks covered by the stored snapshot
	Stats      NodeStats `json:"stats"`
}

// JournalInfo is the distributed tick journal's lifecycle telemetry.
type JournalInfo struct {
	Depth          int   `json:"depth"`           // ticks resident in memory
	DepthHighWater int   `json:"depth_highwater"` // peak resident depth
	Base           int   `json:"base"`            // first journal index still in memory
	Truncations    int   `json:"truncations"`
	TruncatedTicks int   `json:"truncated_ticks"`
	SpillBytes     int64 `json:"spill_bytes"` // checkpoint + segment bytes spilled
}

// StatusResponse summarizes the control plane.
type StatusResponse struct {
	Platform    string       `json:"platform"`
	Model       string       `json:"model"`
	Mode        string       `json:"mode"` // "local" or "distributed"
	Epoch       uint64       `json:"epoch"`
	Paused      bool         `json:"paused"`
	Ticks       int          `json:"ticks"`
	Pending     int          `json:"pending"`
	Alarms      int          `json:"alarms"`
	Events      int64        `json:"events"`
	Predictions int64        `json:"predictions"`
	ExpectNodes int          `json:"expect_nodes"`
	Nodes       []NodeInfo   `json:"nodes,omitempty"`
	Journal     *JournalInfo `json:"journal,omitempty"` // distributed mode only
}

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// readJSON decodes a request body, rejecting trailing garbage.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad JSON body: %w", err)
	}
	return nil
}
