package controlplane

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"memfp/internal/eval"
	"memfp/internal/faultsim"
	"memfp/internal/ml/model"
	"memfp/internal/mlops"
	"memfp/internal/pipeline"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

// The shared fixture: one small Purley fleet (the examples-smoke scale,
// known to contain training positives) and one GBDT artifact trained on
// its first five months. Tests rebuild registries from the serialized
// artifact — the same bytes a node daemon pulls over HTTP — so every
// scorer in play rehydrates from the identical envelope.
type fleetFixture struct {
	all       []trace.Event
	parts     map[trace.DIMMID]platform.DIMMPart
	modelName string
	artifact  []byte
	threshold float64
	metrics   eval.Metrics
	valScores []float64
	// A logistic artifact over the same training window: near-free to
	// score, so benchmarks over it measure the serving data path rather
	// than GBDT tree walks (the closure scorer's moral equivalent, but
	// serializable — node daemons can pull it).
	fastArtifact  []byte
	fastThreshold float64
	fastMetrics   eval.Metrics
	err           error
}

var (
	fixOnce sync.Once
	fix     fleetFixture
)

func fleet(tb testing.TB) *fleetFixture {
	tb.Helper()
	fixOnce.Do(func() {
		res, err := pipeline.Generate(context.Background(),
			faultsim.Config{Platform: platform.Purley, Scale: 0.03, Seed: 31})
		if err != nil {
			fix.err = err
			return
		}
		parts := map[trace.DIMMID]platform.DIMMPart{}
		var all []trace.Event
		for _, l := range res.Store.DIMMs() {
			all = append(all, l.Events...)
			parts[l.ID] = l.Part
		}
		sort.Stable(trace.ByTime(all))

		pipe := mlops.NewPipeline(platform.Purley)
		pipe.Seed = 31
		tr, err := pipe.TrainAndMaybePromote(res.Store, 150*trace.Day, 180*trace.Day)
		if err != nil {
			fix.err = err
			return
		}
		if !tr.Promoted {
			fix.err = fmt.Errorf("fixture model not promoted: %s", tr.Reason)
			return
		}
		fastPipe := mlops.NewPipeline(platform.Purley)
		fastPipe.Seed = 31
		fastPipe.TrainerName = model.NameLogistic
		ftr, err := fastPipe.TrainAndMaybePromote(res.Store, 150*trace.Day, 180*trace.Day)
		if err != nil {
			fix.err = err
			return
		}

		fix.all = all
		fix.parts = parts
		fix.modelName = pipe.ModelName
		fix.artifact = tr.Version.Artifact
		fix.threshold = tr.Version.Threshold
		fix.metrics = tr.Version.Metrics
		fix.fastArtifact = ftr.Version.Artifact
		fix.fastThreshold = ftr.Version.Threshold
		fix.fastMetrics = ftr.Version.Metrics
	})
	if fix.err != nil {
		tb.Fatalf("fleet fixture: %v", fix.err)
	}
	return &fix
}

// mirror builds a fresh pipeline whose registry holds the fixture
// artifact as promoted v1 plus a staged v2 — the same model at half the
// threshold, so a mid-stream promotion visibly changes the alarm stream.
func mirror(tb testing.TB) *mlops.Pipeline {
	tb.Helper()
	f := fleet(tb)
	pipe := mlops.NewPipeline(platform.Purley)
	if _, err := pipe.Registry.ImportVersion(pipe.ModelName, 1, platform.Purley,
		model.NameGBDT, f.artifact, f.metrics, f.threshold); err != nil {
		tb.Fatal(err)
	}
	if _, err := pipe.Registry.ImportVersion(pipe.ModelName, 2, platform.Purley,
		model.NameGBDT, f.artifact, f.metrics, f.threshold/2); err != nil {
		tb.Fatal(err)
	}
	if err := pipe.Registry.Promote(pipe.ModelName, 1); err != nil {
		tb.Fatal(err)
	}
	return pipe
}

// fastMirror is mirror with the logistic artifact promoted as v1: real
// envelope bytes a node can pull, near-zero scoring cost.
func fastMirror(tb testing.TB) *mlops.Pipeline {
	tb.Helper()
	f := fleet(tb)
	pipe := mlops.NewPipeline(platform.Purley)
	if _, err := pipe.Registry.ImportVersion(pipe.ModelName, 1, platform.Purley,
		model.NameLogistic, f.fastArtifact, f.fastMetrics, f.fastThreshold); err != nil {
		tb.Fatal(err)
	}
	if err := pipe.Registry.Promote(pipe.ModelName, 1); err != nil {
		tb.Fatal(err)
	}
	return pipe
}

// closurePipeline builds a pipeline serving an always-firing closure
// scorer (no artifact) — cheap alarms for API tests, and the no-envelope
// error path for the artifact endpoint.
func closurePipeline(tb testing.TB) *mlops.Pipeline {
	tb.Helper()
	pipe := mlops.NewPipeline(platform.Purley)
	pipe.Shards = 2
	mv := pipe.Registry.RegisterScorer(pipe.ModelName, platform.Purley, "always-fire",
		mlops.ScorerFunc(func([]float64) float64 { return 1 }), eval.Metrics{F1: 1}, 0.5)
	if err := pipe.Registry.Promote(pipe.ModelName, mv.Version); err != nil {
		tb.Fatal(err)
	}
	return pipe
}

// encodeLines renders fixture events [lo, hi) as BMC text log lines.
func encodeLines(f *fleetFixture, lo, hi int) string {
	var sb strings.Builder
	for _, e := range f.all[lo:hi] {
		sb.WriteString(trace.EncodeEvent(e, f.parts[e.DIMM]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// renderAlarms renders an alarm stream with exact (hex-float) scores for
// byte comparison.
func renderAlarms(as []mlops.Alarm) string {
	var sb strings.Builder
	for _, a := range as {
		fmt.Fprintf(&sb, "%d %s %d %d %s %s\n",
			int64(a.Time), a.DIMM.Platform, a.DIMM.Server, a.DIMM.Slot,
			strconv.FormatFloat(a.Score, 'x', -1, 64), a.Model)
	}
	return sb.String()
}
