package controlplane

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"memfp/internal/mlops"
)

// TestDistributedByteIdenticalReplay is the PR's core invariant: two node
// daemons replaying the fleet through the control plane — binary tick
// batches, pipelined fan-out, checkpointed journal truncation — emit the
// byte-identical alarm stream of the single-process sharded engine:
// across a mid-stream model promotion, and across one node being killed
// mid-stream and rejoining (fresh state, same name) to restore its
// checkpoint and catch up from a journal whose prefix has been
// truncated.
func TestDistributedByteIdenticalReplay(t *testing.T) {
	f := fleet(t)
	const tick = 512
	all := f.all
	nTicks := (len(all) + tick - 1) / tick
	if nTicks < 12 {
		t.Fatalf("fixture too small: %d ticks", nTicks)
	}
	promoteAt, killAt, rejoinAt := nTicks/3, nTicks/2, 2*nTicks/3

	// Reference: the single-process sharded engine, promotion at the same
	// tick boundary.
	refPipe := mirror(t)
	refPipe.Shards = 3
	name := refPipe.ModelName
	ref := refPipe.NewServer()
	for id, part := range f.parts {
		ref.RegisterDIMM(id, part)
	}
	var refAlarms []mlops.Alarm
	ti := 0
	for lo := 0; lo < len(all); lo += tick {
		if ti == promoteAt {
			if err := refPipe.Registry.Promote(name, 2); err != nil {
				t.Fatal(err)
			}
		}
		hi := min(lo+tick, len(all))
		as, err := ref.IngestBatch(all[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		refAlarms = append(refAlarms, as...)
		ti++
	}
	if len(refAlarms) == 0 {
		t.Fatal("reference replay emitted no alarms; fixture cannot discriminate")
	}

	// Distributed: a control plane and two node daemons over real HTTP.
	// A small window and an aggressive checkpoint cadence so the kill
	// lands on a journal whose prefix has already been truncated.
	distPipe := mirror(t)
	cp, err := New(Config{Pipeline: distPipe, ExpectNodes: 2, Slots: 16, Window: 4, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Close)
	for id, part := range f.parts {
		cp.RegisterDIMM(id, part)
	}
	cpSrv := httptest.NewServer(cp.Handler())
	t.Cleanup(cpSrv.Close)
	cl := NewClient(cpSrv.URL)

	n1 := NewNode("n1", cpSrv.URL)
	n1.Shards = 2
	ts1 := httptest.NewServer(n1.Handler())
	t.Cleanup(ts1.Close)
	if err := n1.JoinOnce(ts1.URL); err != nil {
		t.Fatal(err)
	}
	n2 := NewNode("n2", cpSrv.URL)
	n2.Shards = 2
	ts2 := httptest.NewServer(n2.Handler())
	if err := n2.JoinOnce(ts2.URL); err != nil {
		t.Fatal(err)
	}
	if !cp.Ready() {
		t.Fatal("control plane not ready after both joins")
	}

	var distAlarms []mlops.Alarm
	sawPending := false
	ti = 0
	for lo := 0; lo < len(all); lo += tick {
		if ti == promoteAt {
			// Promotion over the operator API, at the same tick boundary as
			// the reference; subsequent ticks pin v2 and the nodes pull its
			// artifact on demand.
			if _, err := cl.Promote(name, 2); err != nil {
				t.Fatal(err)
			}
		}
		if ti == killAt {
			// Drain first so the kill lands on quiescent, deterministic
			// state — by now several checkpoints have completed, so the
			// journal prefix must already be truncated.
			res, err := cp.Flush()
			if err != nil {
				t.Fatal(err)
			}
			distAlarms = append(distAlarms, res.Alarms...)
			if js := cp.JournalStats(); js.Base == 0 || js.Truncations == 0 {
				t.Errorf("journal never truncated before the kill: %+v", js)
			}
			ts2.Close() // node n2 dies mid-stream; its ticks go pending
		}
		if ti == rejoinAt {
			// Fresh process, same name: the node restores the checkpointed
			// snapshot, then journal replay of the suffix rebuilds its
			// serving state under each tick's pinned model version.
			n2b := NewNode("n2", cpSrv.URL)
			n2b.Shards = 2
			ts2b := httptest.NewServer(n2b.Handler())
			t.Cleanup(ts2b.Close)
			if err := n2b.JoinOnce(ts2b.URL); err != nil {
				t.Fatal(err)
			}
			if n2b.RestoredFrom() == 0 {
				t.Error("rejoining node did not restore a checkpoint; it replayed from zero")
			}
			res, err := cp.Flush()
			if err != nil {
				t.Fatal(err)
			}
			distAlarms = append(distAlarms, res.Alarms...)
		}
		hi := min(lo+tick, len(all))
		res, err := cp.IngestTick(all[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		distAlarms = append(distAlarms, res.Alarms...)
		if res.Pending > 0 {
			sawPending = true
		}
		ti++
	}
	for i := 0; i < 10; i++ {
		res, err := cp.Flush()
		if err != nil {
			t.Fatal(err)
		}
		distAlarms = append(distAlarms, res.Alarms...)
		if res.Pending == 0 {
			break
		}
	}

	if !sawPending {
		t.Error("killing a node never left ticks pending; the kill path was not exercised")
	}
	js := cp.JournalStats()
	if js.Truncations == 0 || js.TruncatedTicks == 0 || js.Base == 0 {
		t.Errorf("journal lifecycle never truncated: %+v", js)
	}
	if js.SpillBytes == 0 {
		t.Errorf("no checkpoint/segment bytes reached the spill store: %+v", js)
	}
	if js.Depth >= nTicks {
		t.Errorf("journal depth %d not bounded below the %d-tick stream", js.Depth, nTicks)
	}
	got, want := renderAlarms(distAlarms), renderAlarms(refAlarms)
	if got != want {
		t.Errorf("distributed alarm stream diverges from single-process reference:\n%s",
			firstDiff(got, want))
	}
	var sawV1, sawV2 bool
	for _, a := range refAlarms {
		sawV1 = sawV1 || strings.HasSuffix(a.Model, "-v1")
		sawV2 = sawV2 || strings.HasSuffix(a.Model, "-v2")
	}
	if !sawV1 || !sawV2 {
		t.Errorf("want alarms under both model versions, got v1=%v v2=%v", sawV1, sawV2)
	}
}

// TestDistributedTextFallback pins the binary wire's escape hatch: a
// node that answers 404 on /ingest2 (an older daemon) flips the control
// plane to the per-tick BMC text wire, and the alarm stream still
// matches the single-process reference — the text codec remains a full
// equivalence oracle for the binary one.
func TestDistributedTextFallback(t *testing.T) {
	f := fleet(t)
	const tick = 512
	nTicks := 6
	all := f.all[:min(nTicks*tick, len(f.all))]

	refPipe := mirror(t)
	ref := refPipe.NewServer()
	for id, part := range f.parts {
		ref.RegisterDIMM(id, part)
	}
	var refAlarms []mlops.Alarm
	for lo := 0; lo < len(all); lo += tick {
		as, err := ref.IngestBatch(all[lo:min(lo+tick, len(all))])
		if err != nil {
			t.Fatal(err)
		}
		refAlarms = append(refAlarms, as...)
	}
	if len(refAlarms) == 0 {
		t.Fatal("reference replay emitted no alarms; fixture cannot discriminate")
	}

	cp, err := New(Config{Pipeline: mirror(t), ExpectNodes: 1, Slots: 8, Window: 4, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Close)
	for id, part := range f.parts {
		cp.RegisterDIMM(id, part)
	}
	cpSrv := httptest.NewServer(cp.Handler())
	t.Cleanup(cpSrv.Close)

	n1 := NewNode("n1", cpSrv.URL)
	n1.Shards = 2
	// An "older daemon": same node, but without the batch endpoint.
	legacy := http.NewServeMux()
	legacy.HandleFunc("/ingest2", http.NotFound)
	legacy.Handle("/", n1.Handler())
	ts1 := httptest.NewServer(legacy)
	t.Cleanup(ts1.Close)
	if err := n1.JoinOnce(ts1.URL); err != nil {
		t.Fatal(err)
	}

	var distAlarms []mlops.Alarm
	for lo := 0; lo < len(all); lo += tick {
		res, err := cp.IngestTick(all[lo:min(lo+tick, len(all))])
		if err != nil {
			t.Fatal(err)
		}
		distAlarms = append(distAlarms, res.Alarms...)
	}
	res, err := cp.Flush()
	if err != nil {
		t.Fatal(err)
	}
	distAlarms = append(distAlarms, res.Alarms...)

	if got, want := renderAlarms(distAlarms), renderAlarms(refAlarms); got != want {
		t.Errorf("text-fallback alarm stream diverges from reference:\n%s", firstDiff(got, want))
	}
}

// firstDiff reports the first differing line of two renderings.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(g), len(w))
}
