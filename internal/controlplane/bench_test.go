package controlplane

import (
	"net/http/httptest"
	"testing"
)

// The PR's headline cost question: what does the HTTP control plane add
// over calling the engine in-process? Both benchmarks replay the same
// event prefix in 1024-event ticks against the always-fire closure model
// on a fresh engine per iteration; the delta is transport + codec.

const benchTick = 1024

func BenchmarkInProcessIngest(b *testing.B) {
	f := fleet(b)
	n := min(8*benchTick, len(f.all))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pipe := closurePipeline(b)
		eng := pipe.NewServer()
		for id, part := range f.parts {
			eng.RegisterDIMM(id, part)
		}
		b.StartTimer()
		for lo := 0; lo < n; lo += benchTick {
			if _, err := eng.IngestBatch(f.all[lo:min(lo+benchTick, n)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkControlPlaneIngest(b *testing.B) {
	f := fleet(b)
	n := min(8*benchTick, len(f.all))
	// Pre-encode the tick bodies once; the benchmark measures the server
	// side (HTTP + line decode + engine), not the client's encoder.
	var bodies []string
	for lo := 0; lo < n; lo += benchTick {
		bodies = append(bodies, encodeLines(f, lo, min(lo+benchTick, n)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cp, err := New(Config{Pipeline: closurePipeline(b)})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(cp.Handler())
		cl := NewClient(ts.URL)
		b.StartTimer()
		for _, body := range bodies {
			if _, err := cl.IngestLines(body); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ts.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/s")
}
