package controlplane

import (
	"net/http/httptest"
	"runtime"
	"testing"

	"memfp/internal/trace"
)

// The PR's headline cost questions: what does the HTTP control plane add
// over calling the engine in-process, how much of that is codec vs
// transport, and does distributing across node daemons keep up? All
// server benchmarks replay the same event prefix in 2048-event ticks
// against the always-fire closure model on a fresh engine per iteration.

const benchTick = 2048

func BenchmarkInProcessIngest(b *testing.B) {
	f := fleet(b)
	n := min(8*benchTick, len(f.all))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pipe := closurePipeline(b)
		eng := pipe.NewServer()
		for id, part := range f.parts {
			eng.RegisterDIMM(id, part)
		}
		b.StartTimer()
		for lo := 0; lo < n; lo += benchTick {
			if _, err := eng.IngestBatch(f.all[lo:min(lo+benchTick, n)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkControlPlaneIngest is the binary wire end to end: encode each
// tick as an MFE1 frame, POST it, decode the MFA1 alarm page that comes
// back — the full client round trip a BMC forwarder pays per tick.
func BenchmarkControlPlaneIngest(b *testing.B) {
	f := fleet(b)
	n := min(8*benchTick, len(f.all))
	partOf := func(id trace.DIMMID) string { return f.parts[id].PartNumber }
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cp, err := New(Config{Pipeline: closurePipeline(b)})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(cp.Handler())
		cl := NewClient(ts.URL)
		runtime.GC() // collect setup garbage outside the timed region
		b.StartTimer()
		for lo := 0; lo < n; lo += benchTick {
			buf = trace.AppendEventFrame(buf[:0], f.all[lo:min(lo+benchTick, n)], partOf)
			if _, err := cl.IngestFrame(buf); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ts.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkControlPlaneIngestText is the fallback text wire end to end
// (encode BMC lines, POST, JSON alarms back) — the pre-PR-10 hot path,
// kept for attribution.
func BenchmarkControlPlaneIngestText(b *testing.B) {
	f := fleet(b)
	n := min(8*benchTick, len(f.all))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cp, err := New(Config{Pipeline: closurePipeline(b)})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(cp.Handler())
		cl := NewClient(ts.URL)
		runtime.GC() // collect setup garbage outside the timed region
		b.StartTimer()
		for lo := 0; lo < n; lo += benchTick {
			if _, err := cl.IngestLines(encodeLines(f, lo, min(lo+benchTick, n))); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ts.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkDistributedIngest drives the full 2-node fan-out the way
// cmd/mlopsd does — IngestTick on the control plane, batched binary
// delivery to two real HTTP node daemons, a closing Flush. The nodes
// serve the cheap logistic artifact so the number measures the
// distribution data path, not model scoring (the serializable
// counterpart of the closure scorer the other server benchmarks use).
func BenchmarkDistributedIngest(b *testing.B) {
	f := fleet(b)
	n := min(8*benchTick, len(f.all))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cp, err := New(Config{Pipeline: fastMirror(b), ExpectNodes: 2, Slots: 16})
		if err != nil {
			b.Fatal(err)
		}
		for id, part := range f.parts {
			cp.RegisterDIMM(id, part)
		}
		cpSrv := httptest.NewServer(cp.Handler())
		var nodeSrvs []*httptest.Server
		for _, name := range []string{"n1", "n2"} {
			nd := NewNode(name, cpSrv.URL)
			nd.Shards = 1
			ts := httptest.NewServer(nd.Handler())
			if err := nd.JoinOnce(ts.URL); err != nil {
				b.Fatal(err)
			}
			nodeSrvs = append(nodeSrvs, ts)
		}
		runtime.GC() // collect setup garbage outside the timed region
		b.StartTimer()
		for lo := 0; lo < n; lo += benchTick {
			if _, err := cp.IngestTick(f.all[lo:min(lo+benchTick, n)]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := cp.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cp.Close()
		cpSrv.Close()
		for _, ts := range nodeSrvs {
			ts.Close()
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/s")
}

// The codec-only pair separates codec cost from transport: encode one
// tick and decode it back, no HTTP, no engine. The delta against the
// server benchmarks attributes the wire win.

func BenchmarkCodecEventsText(b *testing.B) {
	f := fleet(b)
	n := min(8*benchTick, len(f.all))
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		for _, e := range f.all[:n] {
			line := trace.EncodeEvent(e, f.parts[e.DIMM])
			if _, _, err := trace.DecodeEvent(line); err != nil {
				b.Fatal(err)
			}
			events++
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkCodecEventsBinary(b *testing.B) {
	f := fleet(b)
	n := min(8*benchTick, len(f.all))
	partOf := func(id trace.DIMMID) string { return f.parts[id].PartNumber }
	b.ResetTimer()
	events := 0
	var buf []byte
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < n; lo += benchTick {
			hi := min(lo+benchTick, n)
			buf = trace.AppendEventFrame(buf[:0], f.all[lo:hi], partOf)
			evs, _, err := trace.DecodeEventFrame(buf)
			if err != nil {
				b.Fatal(err)
			}
			events += len(evs)
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
