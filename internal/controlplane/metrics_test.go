package controlplane

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"memfp/internal/trace"
)

// metricSample is one parsed exposition line.
type metricSample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (.+)$`)
	labelRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"`)
)

// parseProm parses Prometheus text exposition, failing the test on any
// malformed line or any sample whose family lacks a preceding # TYPE.
func parseProm(t *testing.T, text string) (samples []metricSample, types map[string]string) {
	t.Helper()
	types = map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, m[3], err)
		}
		labels := map[string]string{}
		for _, lm := range labelRe.FindAllStringSubmatch(m[2], -1) {
			labels[lm[1]] = lm[2]
		}
		family := m[1]
		for _, suffix := range []string{"_sum", "_count"} {
			if base := strings.TrimSuffix(family, suffix); base != family {
				if _, ok := types[base]; ok {
					family = base
					break
				}
			}
		}
		if _, ok := types[family]; !ok {
			t.Errorf("line %d: sample %s has no preceding # TYPE", ln+1, m[1])
		}
		samples = append(samples, metricSample{name: m[1], labels: labels, value: v})
	}
	return samples, types
}

func findSamples(samples []metricSample, name string) []metricSample {
	var out []metricSample
	for _, s := range samples {
		if s.name == name {
			out = append(out, s)
		}
	}
	return out
}

func TestMetricsExposition(t *testing.T) {
	f := fleet(t)
	pipe := closurePipeline(t)
	cp, err := New(Config{Pipeline: pipe})
	if err != nil {
		t.Fatal(err)
	}
	for id, part := range f.parts {
		cp.RegisterDIMM(id, part)
	}
	pipe.Monitor.SetReferenceScores([]float64{0.1, 0.2, 0.8, 0.9})
	pipe.Monitor.Feedback(2, 1, 1)

	n := min(4000, len(f.all))
	ticks := 0
	for lo := 0; lo < n; lo += 1000 {
		if _, err := cp.IngestTick(f.all[lo:min(lo+1000, n)]); err != nil {
			t.Fatal(err)
		}
		ticks++
	}
	alarms, _ := cp.AlarmsSince(0)
	if len(alarms) == 0 {
		t.Fatal("fixture ingest raised no alarms")
	}

	ts := httptest.NewServer(cp.Handler())
	t.Cleanup(ts.Close)
	text, err := NewClient(ts.URL).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	samples, types := parseProm(t, text)

	for _, family := range []string{
		"memfp_events_ingested_total", "memfp_predictions_total", "memfp_alarms_total",
		"memfp_drift_psi", "memfp_feedback_total", "memfp_live_precision", "memfp_live_recall",
		"memfp_memory_resident_bytes", "memfp_memory_evictions_total",
		"memfp_memory_rehydrations_total", "memfp_memory_compactions_total",
		"memfp_memory_compacted_events_total",
		"memfp_memory_spilled_bytes", "memfp_memory_spills_total",
		"memfp_shard_queue_depth", "memfp_shard_ingest_latency_seconds",
		"memfp_registry_epoch", "memfp_model_production_version",
		"memfp_ticks_total", "memfp_ticks_pending", "memfp_paused",
		"memfp_journal_depth", "memfp_journal_depth_highwater",
		"memfp_journal_truncations_total", "memfp_journal_truncated_ticks_total",
		"memfp_spill_bytes_total",
		"memfp_nodes_expected", "memfp_nodes_joined",
	} {
		if _, ok := types[family]; !ok {
			t.Errorf("family %s missing from exposition", family)
		}
	}

	// Counters agree with the monitor.
	var evTotal float64
	evTypes := map[string]bool{}
	for _, s := range findSamples(samples, "memfp_events_ingested_total") {
		evTotal += s.value
		evTypes[s.labels["type"]] = true
	}
	mon := pipe.Monitor
	wantEv := float64(mon.EventCount(trace.TypeCE) + mon.EventCount(trace.TypeUE) + mon.EventCount(trace.TypeStorm))
	if evTotal != wantEv || !evTypes["CE"] || !evTypes["UE"] {
		t.Errorf("events exposition = %v over %v, want %v with CE and UE series", evTotal, evTypes, wantEv)
	}
	if s := findSamples(samples, "memfp_alarms_total"); len(s) != 1 || s[0].value != float64(len(alarms)) {
		t.Errorf("alarms_total = %+v, want %d", s, len(alarms))
	}
	if s := findSamples(samples, "memfp_ticks_total"); len(s) != 1 || s[0].value != float64(ticks) {
		t.Errorf("ticks_total = %+v, want %d", s, ticks)
	}
	if s := findSamples(samples, "memfp_registry_epoch"); len(s) != 1 || s[0].value < 1 {
		t.Errorf("registry_epoch = %+v, want >= 1", s)
	}

	// The latency summary carries the three quantiles plus _sum/_count
	// for every engine shard.
	quantiles := map[string]map[string]bool{}
	for _, s := range findSamples(samples, "memfp_shard_ingest_latency_seconds") {
		sh := s.labels["shard"]
		if quantiles[sh] == nil {
			quantiles[sh] = map[string]bool{}
		}
		quantiles[sh][s.labels["quantile"]] = true
	}
	if len(quantiles) != 2 {
		t.Fatalf("latency summary covers shards %v, want the engine's 2", quantiles)
	}
	for sh, qs := range quantiles {
		for _, q := range []string{"0.5", "0.9", "0.99"} {
			if !qs[q] {
				t.Errorf("shard %s missing quantile %s", sh, q)
			}
		}
	}
	var sums, counts int
	for _, s := range samples {
		switch s.name {
		case "memfp_shard_ingest_latency_seconds_sum":
			sums++
		case "memfp_shard_ingest_latency_seconds_count":
			counts++
			if s.value != float64(ticks) {
				t.Errorf("shard %s latency count = %v, want %d ticks", s.labels["shard"], s.value, ticks)
			}
		}
	}
	if sums != 2 || counts != 2 {
		t.Errorf("latency _sum/_count samples = %d/%d, want 2/2", sums, counts)
	}
	if s := findSamples(samples, "memfp_shard_queue_depth"); len(s) != 2 {
		t.Errorf("queue depth samples = %d, want one per shard", len(s))
	}
	if s := findSamples(samples, "memfp_feedback_total"); len(s) != 3 {
		t.Errorf("feedback samples = %d, want tp/fp/fn", len(s))
	}
}

// TestMetricsNodeExposition covers the node daemon's /metrics surface.
func TestMetricsNodeExposition(t *testing.T) {
	cp, err := New(Config{Pipeline: mirror(t), ExpectNodes: 1, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	cpSrv := httptest.NewServer(cp.Handler())
	t.Cleanup(cpSrv.Close)

	n := NewNode("n1", cpSrv.URL)
	n.Shards = 1
	nodeSrv := httptest.NewServer(n.Handler())
	t.Cleanup(nodeSrv.Close)

	// Before joining the node has no engine: 503.
	if _, err := NewClient(nodeSrv.URL).Metrics(); err == nil {
		t.Error("unjoined node served metrics")
	}
	if err := n.JoinOnce(nodeSrv.URL); err != nil {
		t.Fatal(err)
	}
	text, err := NewClient(nodeSrv.URL).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	_, types := parseProm(t, text)
	for _, family := range []string{
		"memfp_events_ingested_total", "memfp_predictions_total", "memfp_drift_psi",
		"memfp_memory_resident_bytes", "memfp_memory_spilled_bytes", "memfp_memory_spills_total",
	} {
		if _, ok := types[family]; !ok {
			t.Errorf("node exposition missing %s", family)
		}
	}
}
