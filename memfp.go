// Package memfp is a from-scratch Go reproduction of "Investigating Memory
// Failure Prediction Across CPU Architectures" (DSN 2024): DRAM fault
// analysis and UE prediction across Intel Purley, Intel Whitley and ARM
// K920 platforms.
//
// The package exposes the end-to-end pipeline the paper describes:
//
//	fleet generation (synthetic stand-in for production BMC logs)
//	  → fault analysis (Table I, Figures 4-5)
//	  → feature extraction and labeling (§IV, §VI)
//	  → model training (Random Forest, LightGBM-style GBDT,
//	    FT-Transformer, Risky-CE-Pattern baseline)
//	  → windowed evaluation (precision / recall / F1 / VIRR, Table II)
//
// with an MLOps runtime (internal/mlops) mirroring Figure 6. Each
// experiment is deterministic for a given seed.
package memfp

import (
	"context"
	"fmt"

	"memfp/internal/dataset"
	"memfp/internal/faultsim"
	"memfp/internal/features"
	"memfp/internal/ml/model"
	"memfp/internal/pipeline"
	"memfp/internal/platform"
	"memfp/internal/trace"
	"memfp/internal/xrand"
)

// Algo identifies a prediction algorithm by its registry name (see
// internal/ml/model). The value is the trainer's registered name; any
// registered trainer is a valid Algo with no changes here.
type Algo string

// The four paper algorithms, kept as named constants for callers that
// predate the predictor registry.
//
// Deprecated: these are plain registry names — Algos() (the full
// registry, in Table II row order) or a trainer name string work
// everywhere these do.
const (
	AlgoRiskyCE Algo = model.NameRiskyCE
	AlgoForest  Algo = model.NameForest
	AlgoGBDT    Algo = model.NameGBDT
	AlgoFTT     Algo = model.NameFTT
)

// Algos lists Table II's rows in order — every trainer in the predictor
// registry, so extensions (e.g. the logistic-regression row) appear
// without call-site changes.
func Algos() []Algo {
	names := model.Names()
	out := make([]Algo, len(names))
	for i, n := range names {
		out[i] = Algo(n)
	}
	return out
}

// Config parameterizes an experiment run.
type Config struct {
	// Scale is the fleet-size multiplier relative to the paper's Table I
	// population (1.0 ≈ 90k DIMMs with CEs). Default 0.25.
	Scale float64
	// Seed drives every random choice.
	Seed uint64
	// Platforms restricts the run (default: all three).
	Platforms []platform.ID
	// TrainEndDay / ValEndDay bound the time-ordered split (days since
	// the start of the ten-month window). Defaults 150 / 180.
	TrainEndDay, ValEndDay int
	// NegativeRatio is the training negatives-per-positive after
	// downsampling. Default 4.
	NegativeRatio float64
	// DropErrorBitFeatures disables bit-level features (ablation).
	DropErrorBitFeatures bool
	// ObservationDays overrides the Δtd observation window (ablation);
	// 0 keeps the paper's 5 days.
	ObservationDays int
	// TrainFocusDays keeps only training positives within this many days
	// of their UE (interval-focused labeling per [29, 30]); 0 uses the
	// default 10 days, negative disables filtering.
	TrainFocusDays int
	// Trainer names the registry predictor used by single-model
	// experiments (the transfer matrix). Default LightGBM; Table II
	// always runs every registered trainer.
	Trainer string
	// Workers bounds experiment-cell concurrency: 0 runs one worker per
	// CPU, 1 forces the sequential path. Results are identical either way.
	Workers int
	// Fleets overrides the fleet cache; nil uses the process-wide shared
	// cache, so every runner touching the same (platform, scale, seed)
	// generates the fleet exactly once.
	Fleets *pipeline.FleetCache
}

// fleets returns the cache this run generates through.
func (c Config) fleets() *pipeline.FleetCache {
	if c.Fleets != nil {
		return c.Fleets
	}
	return pipeline.Shared
}

// generate fetches one platform's fleet through the configured cache. The
// Workers knob rides along to the parallel generator; it is not part of
// the cache key because the generated fleet is byte-identical for every
// worker count.
func (c Config) generate(ctx context.Context, id platform.ID) (*faultsim.Result, error) {
	return c.fleets().Get(ctx, faultsim.Config{
		Platform: id, Scale: c.Scale, Seed: c.Seed, Workers: c.Workers,
	})
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Platforms) == 0 {
		c.Platforms = platform.All()
	}
	if c.TrainEndDay == 0 {
		c.TrainEndDay = 150
	}
	if c.ValEndDay == 0 {
		c.ValEndDay = 180
	}
	if c.NegativeRatio == 0 {
		c.NegativeRatio = 4
	}
	if c.Trainer == "" {
		c.Trainer = model.NameGBDT
	}
	return c
}

// Fleet bundles one generated platform fleet with its extracted samples
// and split, ready for training and evaluation.
type Fleet struct {
	Platform *platform.Platform
	Result   *faultsim.Result
	Samples  []features.Sample
	Split    *dataset.Split
	// TrainDown is the downsampled, shuffled training partition.
	TrainDown *dataset.Dataset
	Extractor *features.Extractor
}

// BuildFleet generates the fleet for one platform and prepares datasets.
// Generation goes through the configured FleetCache, so repeated builds at
// the same (platform, scale, seed) share one simulated fleet.
func BuildFleet(cfg Config, id platform.ID) (*Fleet, error) {
	return BuildFleetCtx(context.Background(), cfg, id)
}

// BuildFleetCtx is BuildFleet with cancellation.
func BuildFleetCtx(ctx context.Context, cfg Config, id platform.ID) (*Fleet, error) {
	cfg = cfg.withDefaults()
	res, err := cfg.generate(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("memfp: generate %s: %w", id, err)
	}
	x := features.NewExtractor()
	if cfg.ObservationDays > 0 {
		x.Windows.Observation = trace.Minutes(cfg.ObservationDays) * trace.Day
	}
	samples := features.BuildAllWorkers(x, features.DefaultSamplerConfig(), res.Store, cfg.Workers)
	if cfg.DropErrorBitFeatures {
		zeroErrorBitFeatures(samples)
	}
	ds := dataset.FromSamples(samples)
	split, err := dataset.TimeSplit(ds,
		trace.Minutes(cfg.TrainEndDay)*trace.Day,
		trace.Minutes(cfg.ValEndDay)*trace.Day)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed ^ 0x5eed)
	train := split.Train
	if cfg.TrainFocusDays >= 0 {
		focus := cfg.TrainFocusDays
		if focus == 0 {
			focus = 10
		}
		train = dataset.FocusPositives(train, trace.Minutes(focus)*trace.Day)
	}
	down := dataset.Downsample(train, cfg.NegativeRatio, rng)
	dataset.Shuffle(down, rng)
	return &Fleet{
		Platform:  platform.MustGet(id),
		Result:    res,
		Samples:   samples,
		Split:     split,
		TrainDown: down,
		Extractor: x,
	}, nil
}

// TrainSet assembles the model-layer training input for this fleet: the
// downsampled training partition, the validation partition, and the
// run's seed.
func (f *Fleet) TrainSet(cfg Config) model.TrainSet {
	return model.TrainSet{
		X: f.TrainDown.X, Y: f.TrainDown.Y,
		XVal: f.Split.Val.X, YVal: f.Split.Val.Y,
		Platform: f.Platform.ID, Seed: cfg.Seed,
	}
}

// batch wraps one split partition as a scoring batch, attaching the
// fleet's raw store so rule-based models can read event histories.
func (f *Fleet) batch(d *dataset.Dataset) model.Batch {
	return model.Batch{X: d.X, DIMMs: d.DIMMs, Times: d.Times, Store: f.Result.Store}
}

// zeroErrorBitFeatures blanks the bit-level feature block (ablation).
func zeroErrorBitFeatures(samples []features.Sample) {
	names := features.Names()
	var idx []int
	for i, n := range names {
		switch n {
		case "frac_dq1", "frac_dq2", "frac_dq4", "frac_dq3plus",
			"frac_beat2", "frac_beat5", "frac_beatint4",
			"mean_bits", "max_bits", "dom_dq", "dom_beat", "dom_dqint", "dom_beatint":
			idx = append(idx, i)
		}
	}
	for _, s := range samples {
		for _, i := range idx {
			s.X[i] = 0
		}
	}
}
