package memfp

import (
	"testing"

	"memfp/internal/eval"
	"memfp/internal/platform"
)

// Pinned Table II cells at (scale 0.02, seed 42), captured from the
// pre-registry implementation (the closed `switch` over Algo). The
// predictor-registry redesign must reproduce the paper algorithms'
// metrics exactly — same floats, same confusion counts — so these values
// are the regression contract for the algorithm layer. If a deliberate
// modeling change moves them, re-capture with:
//
//	for each platform: BuildFleet(Config{Scale: 0.02, Seed: 42}) and
//	EvaluateAlgo per algorithm, printing %.17g metrics.
type pinnedCell struct {
	applicable     bool
	p, r, f1, virr float64
	tp, fp, fn, tn int
}

var pinnedTableII = map[platform.ID]map[Algo]pinnedCell{
	platform.Purley: {
		AlgoRiskyCE: {true, 0.37096774193548387, 0.8214285714285714, 0.51111111111111118, 0.59999999999999998, 23, 39, 5, 811},
		AlgoForest:  {true, 0.76923076923076927, 0.7142857142857143, 0.74074074074074081, 0.62142857142857144, 20, 6, 8, 844},
		AlgoGBDT:    {true, 0.76190476190476186, 0.5714285714285714, 0.65306122448979587, 0.49642857142857144, 16, 5, 12, 845},
		AlgoFTT:     {true, 0.76000000000000001, 0.6785714285714286, 0.71698113207547176, 0.5892857142857143, 19, 6, 9, 844},
	},
	platform.Whitley: {
		AlgoRiskyCE: {applicable: false},
		AlgoForest:  {true, 0, 0, 0, 0, 0, 0, 3, 153},
		AlgoGBDT:    {true, 0, 0, 0, 0, 0, 0, 3, 153},
		AlgoFTT:     {true, 0.20000000000000001, 0.33333333333333331, 0.25, 0.16666666666666666, 1, 4, 2, 149},
	},
	platform.K920: {
		AlgoRiskyCE: {applicable: false},
		AlgoForest:  {true, 0.55555555555555558, 0.41666666666666669, 0.47619047619047622, 0.34166666666666673, 5, 4, 7, 504},
		AlgoGBDT:    {true, 0.59999999999999998, 0.5, 0.54545454545454541, 0.41666666666666663, 6, 4, 6, 504},
		AlgoFTT:     {true, 0.80000000000000004, 0.33333333333333331, 0.47058823529411764, 0.29166666666666663, 4, 1, 8, 507},
	},
}

// checkPinnedCell compares one evaluated cell to its pinned capture.
func checkPinnedCell(t *testing.T, id platform.ID, a Algo, cell Cell) {
	t.Helper()
	want, ok := pinnedTableII[id][a]
	if !ok {
		return // not a pinned (paper) algorithm
	}
	if cell.Applicable != want.applicable {
		t.Errorf("%s/%s: applicable=%v, pinned %v", id, a, cell.Applicable, want.applicable)
		return
	}
	if !want.applicable {
		return
	}
	m := cell.Metrics
	if m.Precision != want.p || m.Recall != want.r || m.F1 != want.f1 || m.VIRR != want.virr {
		t.Errorf("%s/%s: metrics P=%.17g R=%.17g F1=%.17g VIRR=%.17g diverged from pinned P=%.17g R=%.17g F1=%.17g VIRR=%.17g",
			id, a, m.Precision, m.Recall, m.F1, m.VIRR, want.p, want.r, want.f1, want.virr)
	}
	c := m.Confusion
	if (c != eval.Confusion{TP: want.tp, FP: want.fp, FN: want.fn, TN: want.tn}) {
		t.Errorf("%s/%s: confusion %+v diverged from pinned TP=%d FP=%d FN=%d TN=%d",
			id, a, c, want.tp, want.fp, want.fn, want.tn)
	}
}

// TestTableIIPinnedFast verifies the sub-second paper algorithms against
// the pinned capture on every platform. The FT-Transformer rows (minutes
// of training each) are verified by TestTableIIGrid, which has to train
// them anyway.
func TestTableIIPinnedFast(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models on full fleets")
	}
	cfg := Config{Scale: 0.02, Seed: 42, Workers: 1}
	for _, id := range platform.All() {
		fleet, err := BuildFleet(cfg, id)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range []Algo{AlgoRiskyCE, AlgoForest, AlgoGBDT} {
			cell, err := EvaluateAlgo(cfg, fleet, a)
			if err != nil {
				t.Fatalf("%s/%s: %v", id, a, err)
			}
			checkPinnedCell(t, id, a, cell)
		}
	}
}
