package memfp

import (
	"context"
	"fmt"
	"strings"

	"memfp/internal/eval"
	"memfp/internal/ml/model"
	"memfp/internal/pipeline"
	"memfp/internal/platform"
)

// Cross-platform transfer experiment: train a predictor on one platform's
// fleet, apply it to another's. This is the repository's extension of the
// paper's central motivation — if failure patterns were
// architecture-independent, transfer would be free; the measured diagonal
// dominance quantifies why the paper builds per-platform models.

// TransferResult is one (train platform, test platform) cell.
type TransferResult struct {
	TrainOn, TestOn platform.ID
	Metrics         eval.Metrics
}

// RunTransferMatrix trains cfg.Trainer (default LightGBM) per platform
// and evaluates every model on every platform's test partition.
func RunTransferMatrix(cfg Config) ([]TransferResult, error) {
	return RunTransferMatrixCtx(context.Background(), cfg)
}

// RunTransferMatrixCtx runs the transfer matrix as a two-stage pipeline:
// stage one builds and trains one model per platform in parallel; stage
// two fans the source × destination evaluation cells out across the pool.
// The predictor comes from the registry via cfg.Trainer, so any
// registered algorithm can fill the matrix.
func RunTransferMatrixCtx(ctx context.Context, cfg Config) ([]TransferResult, error) {
	cfg = cfg.withDefaults()
	trainer, ok := model.Get(cfg.Trainer)
	if !ok {
		return nil, fmt.Errorf("memfp: transfer: unknown trainer %q (registered: %v)", cfg.Trainer, model.Names())
	}
	for _, id := range cfg.Platforms {
		if !trainer.Applicable(id) {
			return nil, fmt.Errorf("memfp: transfer: trainer %q is not applicable on %s", cfg.Trainer, id)
		}
	}
	type trained struct {
		fleet *Fleet
		model model.Model
	}
	ts, err := pipeline.Map(ctx, cfg.Workers, cfg.Platforms,
		func(id platform.ID) string { return "transfer/train/" + string(id) },
		func(ctx context.Context, id platform.ID) (trained, error) {
			fleet, err := BuildFleetCtx(ctx, cfg, id)
			if err != nil {
				return trained{}, err
			}
			m, err := trainer.Fit(ctx, fleet.TrainSet(cfg))
			if err != nil {
				return trained{}, fmt.Errorf("memfp: transfer train %s: %w", id, err)
			}
			return trained{fleet: fleet, model: m}, nil
		})
	if err != nil {
		return nil, err
	}
	models := map[platform.ID]trained{}
	for i, id := range cfg.Platforms {
		models[id] = ts[i]
	}

	type pair struct{ src, dst platform.ID }
	var pairs []pair
	for _, src := range cfg.Platforms {
		for _, dst := range cfg.Platforms {
			pairs = append(pairs, pair{src, dst})
		}
	}
	vp := eval.DefaultVIRRParams()
	return pipeline.Map(ctx, cfg.Workers, pairs,
		func(p pair) string { return fmt.Sprintf("transfer/%s->%s", p.src, p.dst) },
		func(ctx context.Context, p pair) (TransferResult, error) {
			srcT, dstT := models[p.src], models[p.dst]
			// Threshold tuned on the *source* platform's validation —
			// exactly what naive reuse of a foreign model would do.
			val := srcT.fleet.Split.Val
			tr := srcT.fleet.Split.Train
			test := dstT.fleet.Split.Test
			metrics := eval.EvaluateWindowed(
				eval.Series{DIMMs: tr.DIMMs, Times: tr.Times, Y: tr.Y},
				eval.Series{DIMMs: val.DIMMs, Times: val.Times,
					Scores: srcT.model.ScoreBatch(srcT.fleet.batch(val)), Y: val.Y},
				eval.Series{DIMMs: test.DIMMs, Times: test.Times,
					Scores: srcT.model.ScoreBatch(dstT.fleet.batch(test)), Y: test.Y},
				eval.DefaultWindowedConfig(), vp)
			return TransferResult{TrainOn: p.src, TestOn: p.dst, Metrics: metrics}, nil
		})
}

// FormatTransferMatrix renders the matrix with F1 cells.
func FormatTransferMatrix(results []TransferResult) string {
	ids := platform.All()
	cell := map[[2]platform.ID]eval.Metrics{}
	for _, r := range results {
		cell[[2]platform.ID{r.TrainOn, r.TestOn}] = r.Metrics
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s", "train \\ test F1")
	for _, dst := range ids {
		fmt.Fprintf(&sb, " %14s", dst)
	}
	sb.WriteByte('\n')
	for _, src := range ids {
		fmt.Fprintf(&sb, "%-16s", src)
		for _, dst := range ids {
			m, ok := cell[[2]platform.ID{src, dst}]
			if !ok {
				fmt.Fprintf(&sb, " %14s", "-")
				continue
			}
			fmt.Fprintf(&sb, " %14.2f", m.F1)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
