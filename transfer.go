package memfp

import (
	"context"
	"fmt"
	"strings"

	"memfp/internal/eval"
	"memfp/internal/ml/gbdt"
	"memfp/internal/pipeline"
	"memfp/internal/platform"
	"memfp/internal/trace"
)

// Cross-platform transfer experiment: train a predictor on one platform's
// fleet, apply it to another's. This is the repository's extension of the
// paper's central motivation — if failure patterns were
// architecture-independent, transfer would be free; the measured diagonal
// dominance quantifies why the paper builds per-platform models.

// TransferResult is one (train platform, test platform) cell.
type TransferResult struct {
	TrainOn, TestOn platform.ID
	Metrics         eval.Metrics
}

// RunTransferMatrix trains a GBDT per platform and evaluates every model
// on every platform's test partition.
func RunTransferMatrix(cfg Config) ([]TransferResult, error) {
	return RunTransferMatrixCtx(context.Background(), cfg)
}

// RunTransferMatrixCtx runs the transfer matrix as a two-stage pipeline:
// stage one builds and trains one GBDT per platform in parallel; stage two
// fans the source × destination evaluation cells out across the pool.
func RunTransferMatrixCtx(ctx context.Context, cfg Config) ([]TransferResult, error) {
	cfg = cfg.withDefaults()
	type trained struct {
		fleet *Fleet
		model *gbdt.Model
	}
	ts, err := pipeline.Map(ctx, cfg.Workers, cfg.Platforms,
		func(id platform.ID) string { return "transfer/train/" + string(id) },
		func(ctx context.Context, id platform.ID) (trained, error) {
			fleet, err := BuildFleetCtx(ctx, cfg, id)
			if err != nil {
				return trained{}, err
			}
			p := gbdt.DefaultParams()
			p.Seed = cfg.Seed
			m, err := gbdt.Fit(fleet.TrainDown.X, fleet.TrainDown.Y,
				fleet.Split.Val.X, fleet.Split.Val.Y, p)
			if err != nil {
				return trained{}, fmt.Errorf("memfp: transfer train %s: %w", id, err)
			}
			return trained{fleet: fleet, model: m}, nil
		})
	if err != nil {
		return nil, err
	}
	models := map[platform.ID]trained{}
	for i, id := range cfg.Platforms {
		models[id] = ts[i]
	}

	type pair struct{ src, dst platform.ID }
	var pairs []pair
	for _, src := range cfg.Platforms {
		for _, dst := range cfg.Platforms {
			pairs = append(pairs, pair{src, dst})
		}
	}
	vp := eval.DefaultVIRRParams()
	return pipeline.Map(ctx, cfg.Workers, pairs,
		func(p pair) string { return fmt.Sprintf("transfer/%s->%s", p.src, p.dst) },
		func(ctx context.Context, p pair) (TransferResult, error) {
			srcT, dstT := models[p.src], models[p.dst]
			// Threshold tuned on the *source* platform's validation —
			// exactly what naive reuse of a foreign model would do.
			val := srcT.fleet.Split.Val
			valDS := eval.AggregateByDIMMWindow(val.DIMMs, val.Times,
				srcT.model.PredictBatch(val.X), val.Y, 30*trace.Day)

			test := dstT.fleet.Split.Test
			testDS := eval.AggregateByDIMMWindow(test.DIMMs, test.Times,
				srcT.model.PredictBatch(test.X), test.Y, 30*trace.Day)

			tr := srcT.fleet.Split.Train
			trainDS := eval.AggregateByDIMMWindow(tr.DIMMs, tr.Times,
				make([]float64, tr.Len()), tr.Y, 30*trace.Day)
			baseRate := eval.PositiveUnitRate(append(trainDS, valDS...))
			testScores := make([]float64, len(testDS))
			for i, d := range testDS {
				testScores[i] = d.Score
			}
			th := eval.TuneThreshold(valDS, vp, 20, 1.6, baseRate, testScores)
			return TransferResult{
				TrainOn: p.src, TestOn: p.dst,
				Metrics: eval.Compute(eval.ConfusionAt(testDS, th), vp),
			}, nil
		})
}

// FormatTransferMatrix renders the matrix with F1 cells.
func FormatTransferMatrix(results []TransferResult) string {
	ids := platform.All()
	cell := map[[2]platform.ID]eval.Metrics{}
	for _, r := range results {
		cell[[2]platform.ID{r.TrainOn, r.TestOn}] = r.Metrics
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s", "train \\ test F1")
	for _, dst := range ids {
		fmt.Fprintf(&sb, " %14s", dst)
	}
	sb.WriteByte('\n')
	for _, src := range ids {
		fmt.Fprintf(&sb, "%-16s", src)
		for _, dst := range ids {
			m, ok := cell[[2]platform.ID{src, dst}]
			if !ok {
				fmt.Fprintf(&sb, " %14s", "-")
				continue
			}
			fmt.Fprintf(&sb, " %14.2f", m.F1)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
